"""Sharded fleet soak: one seeded stream across N broker shards.

:func:`run_fleet` replays the *same* seeded churn+publication stream as
:func:`repro.online.soak.run_soak`, but partitioned: a
:class:`~repro.fleet.sharding.ShardMap` assigns every grid cell to one
shard, publications route to the owner of their landing cell, and
subscriptions register at every shard their rectangle overlaps (full
members under ``replicate``, match-only outside home under ``forward``
— see :mod:`repro.fleet.runtime`).

**Leave resolution happens globally, before dispatch.**  The
single-broker stream's :class:`~repro.online.service.ChurnLeave`
carries a positional index into the service's live list; a shard only
sees part of the population, so the fleet driver replays churn in
arrival order against a global registry (seeded with the initial
subscriptions, exactly like ``BrokerService.live_handles``) and resolves
each leave to a concrete fleet-wide subscription id.  With one shard
this reproduces the single-broker resolution decision for decision, so
``shards=1`` is byte-identical to :func:`run_soak`.

**Epochs are coordination barriers.**  The stream splits into
``epochs`` contiguous slices; within a slice shards run independently
(fanned across ``workers`` processes, or inline — same code path, same
results).  At each barrier the :class:`~repro.fleet.coordinator.
FleetCoordinator` collects per-shard measured waste, rebalances the
global K budget when misalignment drifts past its threshold, and the
next slice's shards refit cold from the live registration set under
their (possibly new) budget.  Virtual clocks carry across barriers:
``busy_until`` and the exact token-bucket state resume where the
previous epoch stopped.

Every number in :meth:`FleetResult.deterministic_report` is
virtual-clock derived, hence byte-identical across runs and worker
counts for the same configuration.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..broker import BrokerConfig, ContentBroker
from ..obs import (
    FlightRecorder,
    bench_stamp,
    get_flight_recorder,
    get_registry,
    get_tracer,
    reset_worker_state,
    set_flight_recorder,
)
from ..online.queues import POLICIES, QueueConfig
from ..online.service import (
    ChurnJoin,
    ChurnLeave,
    Publish,
    ServiceConfig,
    ServiceResult,
    StreamEvent,
)
from ..online.soak import (
    SoakConfig,
    SoakResult,
    finalize_equivalence,
    generate_stream,
)
from ..sim.scenario import build_preliminary_scenario
from .coordinator import FleetCoordinator
from .runtime import (
    FLEET_POLICIES,
    FleetJoin,
    FleetLeave,
    ShardMaintainer,
    ShardService,
)
from .sharding import STRATEGIES, ShardMap

__all__ = [
    "FleetConfig",
    "FleetResult",
    "ShardSummary",
    "route_fleet_stream",
    "run_fleet",
]


@dataclass(frozen=True)
class FleetConfig:
    """One fleet soak: the single-broker knobs plus the fleet's own."""

    # single-broker soak surface (see repro.online.soak.SoakConfig)
    n_events: int = 20000
    seed: int = 7
    rate: float = 800.0
    service_rate: float = 1000.0
    churn_fraction: float = 0.1
    n_nodes: int = 100
    n_subscriptions: int = 300
    n_groups: int = 30
    max_cells: Optional[int] = 600
    drift_threshold: float = 1.25
    queue_capacity: int = 256
    policy: str = "block"
    queue_rate: Optional[float] = None
    scheme: str = "dense"
    aggregate: bool = False
    # fleet surface
    shards: int = 4
    sharding: str = "hash"
    fleet_policy: str = "replicate"
    epochs: int = 1
    workers: int = 1
    #: misalignment ratio past which the coordinator resplits K
    rebalance_threshold: float = 1.25
    checkpoint_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.epochs < 1:
            raise ValueError("epochs must be at least 1")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.sharding not in STRATEGIES:
            raise ValueError(f"sharding must be one of {STRATEGIES}")
        if self.fleet_policy not in FLEET_POLICIES:
            raise ValueError(
                f"fleet_policy must be one of {FLEET_POLICIES}"
            )
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}")
        from ..delivery import SCHEMES

        if self.scheme not in SCHEMES:
            raise ValueError(f"scheme must be one of {SCHEMES}")
        if self.n_groups < self.shards:
            raise ValueError(
                "the global group budget must cover one group per shard"
            )

    def soak_config(self) -> SoakConfig:
        """The equivalent single-broker configuration (stream seed)."""
        return SoakConfig(
            n_events=self.n_events,
            seed=self.seed,
            rate=self.rate,
            service_rate=self.service_rate,
            churn_fraction=self.churn_fraction,
            n_nodes=self.n_nodes,
            n_subscriptions=self.n_subscriptions,
            n_groups=self.n_groups,
            max_cells=self.max_cells,
            drift_threshold=self.drift_threshold,
            queue_capacity=self.queue_capacity,
            policy=self.policy,
            queue_rate=self.queue_rate,
            scheme=self.scheme,
            aggregate=self.aggregate,
        )


# ----------------------------------------------------------------------
# global routing pass
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Registration:
    """Where one fleet-wide subscription id lives."""

    gid: int
    node: int
    rectangle: object
    shards: Tuple[int, ...]
    home: int


@dataclass
class FleetPlan:
    """The routed stream: per-epoch, per-shard event lists plus the
    live registration set at every epoch start."""

    scenario_name: str
    #: events[epoch][shard] -> tuple of StreamEvents for that slice
    events: List[List[List[StreamEvent]]]
    #: live registrations (gid ascending) at each epoch start
    live_at_epoch: List[List[_Registration]]
    n_joins: int = 0
    n_leaves: int = 0
    n_noop_leaves: int = 0
    #: joins/initials whose rectangle overlapped cells of >1 shard
    n_cross_shard: int = 0


def _route_registration(
    gid: int, node: int, rectangle, scenario, shard_map: ShardMap
) -> _Registration:
    covered = scenario.space.cells_in_rectangle(rectangle)
    shards = tuple(
        int(s) for s in shard_map.shards_of_cells(covered)
    ) or (0,)
    home = (
        shard_map.home_shard(covered, scenario.cell_pmf)
        if len(covered)
        else 0
    )
    return _Registration(gid, node, rectangle, shards, home)


def route_fleet_stream(
    config: FleetConfig, scenario, shard_map: ShardMap
) -> FleetPlan:
    """Resolve leaves globally and route every event to its shard(s).

    Churn is replayed in arrival order against a registry seeded with
    the initial subscription ids — the same order and the same
    ``index % len(live)`` resolution the single-broker service applies,
    so the degenerate one-shard plan reproduces its decisions exactly.
    """
    events = generate_stream(config.soak_config(), scenario)
    ordered = sorted(events, key=lambda e: (e.time, e.stream != "churn"))
    n_shards = shard_map.n_shards
    replicate = config.fleet_policy == "replicate"

    subs = scenario.subscriptions
    nodes = subs.subscriber_nodes
    registrations: Dict[int, _Registration] = {}
    registry: List[int] = []
    for gid, rectangle in enumerate(subs.rectangles()):
        reg = _route_registration(
            gid, int(nodes[gid]), rectangle, scenario, shard_map
        )
        registrations[gid] = reg
        registry.append(gid)
    next_gid = len(registry)

    plan = FleetPlan(
        scenario_name=scenario.name,
        events=[],
        live_at_epoch=[],
        n_cross_shard=sum(
            1 for reg in registrations.values() if len(reg.shards) > 1
        ),
    )
    bounds = np.linspace(0, len(ordered), config.epochs + 1).astype(int)
    for epoch in range(config.epochs):
        plan.live_at_epoch.append(
            [registrations[g] for g in sorted(registry)]
        )
        shard_events: List[List[StreamEvent]] = [[] for _ in range(n_shards)]
        for event in ordered[bounds[epoch] : bounds[epoch + 1]]:
            payload = event.payload
            if isinstance(payload, ChurnJoin):
                gid = next_gid
                next_gid += 1
                reg = _route_registration(
                    gid, payload.node, payload.rectangle, scenario,
                    shard_map,
                )
                registrations[gid] = reg
                registry.append(gid)
                plan.n_joins += 1
                if len(reg.shards) > 1:
                    plan.n_cross_shard += 1
                for shard in reg.shards:
                    member = replicate or shard == reg.home
                    shard_events[shard].append(
                        StreamEvent(
                            event.time, "churn",
                            FleetJoin(
                                gid, payload.node, payload.rectangle,
                                member=member,
                            ),
                        )
                    )
            elif isinstance(payload, ChurnLeave):
                if not registry:
                    # the single-broker service would no-op this leave;
                    # shard 0 carries the noop so event counts conserve
                    plan.n_noop_leaves += 1
                    shard_events[0].append(
                        StreamEvent(event.time, "churn", FleetLeave(-1))
                    )
                    continue
                gid = registry.pop(payload.index % len(registry))
                reg = registrations[gid]
                plan.n_leaves += 1
                for shard in reg.shards:
                    shard_events[shard].append(
                        StreamEvent(event.time, "churn", FleetLeave(gid))
                    )
            elif isinstance(payload, Publish):
                owner = shard_map.shard_of_point(payload.point)
                shard_events[owner].append(event)
            else:
                raise TypeError(
                    f"unroutable payload {type(payload).__name__}"
                )
        plan.events.append(shard_events)
    return plan


# ----------------------------------------------------------------------
# shard tasks (pure functions of their picklable arguments)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardTask:
    """Everything one shard needs for one epoch, by value."""

    shard: int
    epoch: int
    k: int
    fleet_policy: str
    scenario_kwargs: Tuple[Tuple[str, object], ...]
    config: FleetConfig
    #: (gid, node, rectangle, member) live at epoch start, gid ascending
    registrations: Tuple[Tuple[int, int, object, bool], ...]
    events: Tuple[StreamEvent, ...]
    #: boolean owned-cell mask; None (single shard) = the full space.
    #: The shard's broker sees the global pmf restricted to the cells it
    #: owns — it never receives publications for the others, so both the
    #: clustering objective and the measured expected waste are taken
    #: against the shard's true event distribution.
    owned_mask: Optional[np.ndarray] = None
    busy_until: float = 0.0
    #: exact (queue, tokens(n, d), last_refill(n, d)) carried states
    token_states: Tuple[
        Tuple[str, Tuple[int, int], Tuple[int, int]], ...
    ] = ()
    finalize: bool = False
    flight: bool = False
    slo_spec: Tuple[Tuple[Tuple[str, object], ...], ...] = ()
    checkpoint_path: Optional[str] = None


@dataclass
class ShardOutcome:
    """One shard-epoch's results (picklable, virtual-clock exact)."""

    shard: int
    epoch: int
    k: int
    service: ServiceResult
    current_waste: float
    fit_waste: float
    busy_until: float
    token_states: Tuple[
        Tuple[str, Tuple[int, int], Tuple[int, int]], ...
    ]
    warm_waste: Optional[float] = None
    cold_waste: Optional[float] = None
    forwards: int = 0
    forward_joins: int = 0
    forward_leaves: int = 0
    n_registrations: int = 0
    seconds: float = 0.0
    pid: int = 0
    metrics: List[Dict] = field(default_factory=list)
    spans: List[Dict] = field(default_factory=list)
    flight_records: List[Dict] = field(default_factory=list)


def _shard_broker_config(config: FleetConfig, k: int) -> BrokerConfig:
    """Per-shard broker tuning: the soak's knobs with a split budget."""
    return BrokerConfig(
        n_groups=k,
        max_cells=config.max_cells,
        scheme=config.scheme,
        algorithm="forgy",
        adaptive=True,
        warm_start=True,
        max_warm_iters=25,
        rebalance_after=10**9,
        drift_threshold=config.drift_threshold,
        delta_cells=True,
        aggregate=config.aggregate,
    )


def run_shard_task(task: ShardTask) -> ShardOutcome:
    """Build one shard from its registrations and replay its slice."""
    config = task.config
    scenario = build_preliminary_scenario(**dict(task.scenario_kwargs))
    cell_pmf = scenario.cell_pmf
    if task.owned_mask is not None:
        cell_pmf = np.where(task.owned_mask, cell_pmf, 0.0)
    broker = ContentBroker(
        scenario.routing,
        scenario.space,
        cell_pmf,
        config=_shard_broker_config(config, task.k),
    )
    handles = [
        broker.subscribe(node, rectangle)
        for _, node, rectangle, _ in task.registrations
    ]
    broker.rebuild()
    maintainer = ShardMaintainer(broker)
    slo = None
    if task.slo_spec:
        from ..obs import SloEngine, load_slo_spec

        slo = SloEngine(
            load_slo_spec([dict(entry) for entry in task.slo_spec])
        )
    queue = QueueConfig(
        capacity=config.queue_capacity,
        policy=config.policy,
        rate=config.queue_rate,
    )
    service = ShardService(
        broker,
        maintainer,
        ServiceConfig(
            service_rate=config.service_rate,
            churn_queue=queue,
            pub_queue=queue,
            fault_queue=QueueConfig(capacity=config.queue_capacity),
        ),
        slo=slo,
        shard_id=task.shard,
        policy=task.fleet_policy,
    )
    for (gid, _, _, member), handle in zip(task.registrations, handles):
        service.register_initial(gid, handle, member=member)
    service.live_handles = [
        handle
        for (_, _, _, member), handle in zip(task.registrations, handles)
        if member
    ]
    if maintainer.forward_handles:
        # re-base the drift baseline with the match-only columns
        # scrubbed out of the initial fit (see ShardMaintainer.capture)
        maintainer.capture()
    # resume the virtual clock and the exact admission state where the
    # previous epoch's barrier stopped them
    service.busy_until = float(task.busy_until)
    for name, tokens, last_refill in task.token_states:
        service._queues[name].restore_token_state(tokens, last_refill)

    recorder: Optional[FlightRecorder] = None
    previous_recorder = None
    if task.flight:
        recorder = FlightRecorder(enabled=True)
        previous_recorder = get_flight_recorder()
        set_flight_recorder(recorder)
    start = time.perf_counter()
    try:
        outcome = service.run(list(task.events))
    finally:
        if task.flight:
            set_flight_recorder(previous_recorder)
    seconds = time.perf_counter() - start
    service.collect_slo(outcome)
    warm = cold = None
    if task.finalize and broker.clustering is not None:
        warm, cold = finalize_equivalence(broker)
    result = ShardOutcome(
        shard=task.shard,
        epoch=task.epoch,
        k=task.k,
        service=outcome,
        current_waste=maintainer.current_waste,
        fit_waste=maintainer.fit_waste,
        busy_until=service.busy_until,
        token_states=tuple(
            (name, *q.token_state())
            for name, q in sorted(service._queues.items())
        ),
        warm_waste=warm,
        cold_waste=cold,
        forwards=service.forwards,
        forward_joins=service.forward_joins,
        forward_leaves=service.forward_leaves,
        n_registrations=len(task.registrations),
        seconds=seconds,
        pid=os.getpid(),
        flight_records=recorder.as_dicts() if recorder is not None else [],
    )
    if task.checkpoint_path:
        from ..persistence import save_shard_checkpoint

        save_shard_checkpoint(
            task.checkpoint_path,
            shard=task.shard,
            k=task.k,
            maintainer=maintainer,
            service=service,
        )
    return result


def _init_fleet_worker(tracing: bool) -> None:
    reset_worker_state(tracing=tracing, flight=False)


def _run_shard_task_isolated(task: ShardTask) -> ShardOutcome:
    """Pool task: per-task observability delta (sweep-engine idiom)."""
    registry = get_registry()
    tracer = get_tracer()
    registry.reset()
    tracer.clear()
    outcome = run_shard_task(task)
    outcome.metrics = registry.snapshot()
    outcome.spans = [span.as_dict() for span in tracer.spans()]
    return outcome


def _run_epoch(
    tasks: Sequence[ShardTask], workers: int
) -> List[ShardOutcome]:
    """Run one epoch's shard tasks, inline or across a process pool.

    The pooled path snapshots each worker's metrics/spans and the parent
    merges them in shard order; results themselves are pure functions of
    the tasks, so worker count never changes a single byte.
    """
    if workers <= 1 or len(tasks) <= 1:
        return [run_shard_task(task) for task in tasks]
    method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else multiprocessing.get_start_method()
    )
    with ProcessPoolExecutor(
        max_workers=min(workers, len(tasks)),
        mp_context=multiprocessing.get_context(method),
        initializer=_init_fleet_worker,
        initargs=(get_tracer().enabled,),
    ) as pool:
        futures = [
            pool.submit(_run_shard_task_isolated, task) for task in tasks
        ]
        outcomes = [future.result() for future in futures]
    outcomes.sort(key=lambda outcome: outcome.shard)
    registry = get_registry()
    tracer = get_tracer()
    for outcome in outcomes:
        if outcome.metrics:
            registry.merge_records(outcome.metrics)
        if outcome.spans:
            tracer.ingest(outcome.spans)
    return outcomes


# ----------------------------------------------------------------------
# fleet results
# ----------------------------------------------------------------------
@dataclass
class ShardSummary:
    """One shard's epochs folded together (virtual numbers only)."""

    shard: int
    k: int  # final-epoch budget
    service: ServiceResult
    current_waste: float = 0.0
    warm_waste: Optional[float] = None
    cold_waste: Optional[float] = None
    forwards: int = 0
    forward_joins: int = 0
    forward_leaves: int = 0
    n_registrations: int = 0  # at final epoch start
    seconds: float = 0.0


def _fold_service(parts: Sequence[ServiceResult]) -> ServiceResult:
    """Fold per-epoch ServiceResults into one (counts sum, latencies
    concatenate, peaks max, final-state fields take the last epoch)."""
    folded = ServiceResult()
    last = parts[-1]
    streams = sorted(
        {name for part in parts for name in part.n_processed}
    )
    folded.n_events = sum(part.n_events for part in parts)
    folded.n_processed = {
        s: sum(part.n_processed.get(s, 0) for part in parts)
        for s in streams
    }
    folded.n_shed = {
        s: sum(part.n_shed.get(s, 0) for part in parts) for s in streams
    }
    folded.latencies = {
        s: [v for part in parts for v in part.latencies.get(s, [])]
        for s in streams
    }
    folded.queue_depth_peaks = {
        s: max(part.queue_depth_peaks.get(s, 0) for part in parts)
        for s in streams
    }
    for name in (
        "n_rebuilds", "n_fits", "joins", "leaves", "unassigned_joins",
        "total_cost",
    ):
        setattr(
            folded, name, sum(getattr(part, name) for part in parts)
        )
    folded.final_inflation = last.final_inflation
    folded.final_waste = last.final_waste
    folded.fit_waste = last.fit_waste
    folded.horizon = max(part.horizon for part in parts)
    folded.inflation_trajectory = [
        sample
        for part in parts
        for sample in part.inflation_trajectory
    ]
    folded.slo_breaches = [b for part in parts for b in part.slo_breaches]
    folded.slo_summary = last.slo_summary
    return folded


@dataclass
class FleetResult:
    """A finished fleet soak."""

    config: FleetConfig
    scenario_name: str
    shards: List[ShardSummary]
    plan: FleetPlan
    #: the K split used in each epoch
    splits: List[List[int]]
    rebalances: int = 0
    wall_seconds: float = 0.0
    flight_records: List[Dict] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def total_waste(self) -> float:
        return sum(s.current_waste for s in self.shards)

    @property
    def total_cost(self) -> float:
        return sum(s.service.total_cost for s in self.shards)

    @property
    def total_forwards(self) -> int:
        return sum(s.forwards for s in self.shards)

    @property
    def horizon(self) -> float:
        return max(s.service.horizon for s in self.shards)

    def _degenerate_soak(self) -> SoakResult:
        """The single-shard fleet *is* the single-broker soak."""
        shard = self.shards[0]
        return SoakResult(
            config=self.config.soak_config(),
            scenario_name=self.scenario_name,
            service=shard.service,
            warm_waste=shard.warm_waste,
            cold_waste=shard.cold_waste,
            wall_seconds=self.wall_seconds,
            flight_records=self.flight_records,
        )

    @property
    def waste_ratio(self) -> Optional[float]:
        """Warm-over-cold refit ratio of the degenerate (1-shard) case."""
        if self.config.shards == 1 and self.config.epochs == 1:
            return self._degenerate_soak().waste_ratio
        return None

    def deterministic_report(self) -> str:
        """Virtual-clock summary, byte-identical across runs/workers.

        One shard, one epoch prints the *single-broker soak report
        verbatim* — the fleet CLI is a drop-in for ``serve`` there.
        """
        if self.config.shards == 1 and self.config.epochs == 1:
            return self._degenerate_soak().deterministic_report()
        config = self.config
        lines = [
            "fleet             "
            f"shards={config.shards} sharding={config.sharding} "
            f"policy={config.fleet_policy} epochs={config.epochs} "
            f"K={config.n_groups}",
            f"scenario          {self.scenario_name}",
            f"seed              {config.seed}",
            f"events            {config.n_events}",
            f"cross-shard subs  {self.plan.n_cross_shard}",
        ]
        for epoch, split in enumerate(self.splits):
            lines.append(
                f"split e{epoch}          "
                + "/".join(str(k) for k in split)
            )
        for s in self.shards:
            svc = s.service
            lines.append(
                f"shard {s.shard:<2}          "
                f"k={s.k} events={svc.n_events} "
                f"pubs={svc.n_processed.get('pub', 0)} "
                f"joins={svc.joins} leaves={svc.leaves} "
                f"fits={svc.n_fits} rebuilds={svc.n_rebuilds} "
                f"forwards={s.forwards} "
                f"waste={s.current_waste:.9f} "
                f"cost={svc.total_cost:.6f}"
            )
        lines.extend(
            [
                f"fleet waste       {self.total_waste:.9f}",
                f"fleet cost        {self.total_cost:.6f}",
                f"fleet forwards    {self.total_forwards}",
                f"fleet rebalances  {self.rebalances}",
                f"horizon           {self.horizon:.9f}",
            ]
        )
        warm = [s.warm_waste for s in self.shards]
        cold = [s.cold_waste for s in self.shards]
        if all(w is not None for w in warm) and any(
            c is not None for c in cold
        ):
            total_warm = sum(w for w in warm if w is not None)
            total_cold = sum(c for c in cold if c is not None)
            lines.append(f"warm waste        {total_warm:.9f}")
            lines.append(f"cold waste        {total_cold:.9f}")
        slo_breaches = sum(
            len(s.service.slo_breaches) for s in self.shards
        )
        if any(s.service.slo_summary for s in self.shards):
            lines.append(f"slo breaches      {slo_breaches}")
        return "\n".join(lines) + "\n"

    def bench_record(self) -> Dict:
        """The ``BENCH_fleet.json`` payload."""
        config = self.config
        pubs = sum(
            s.service.n_processed.get("pub", 0) for s in self.shards
        )
        record = {
            "benchmark": "fleet_soak",
            "scenario": self.scenario_name,
            "seed": config.seed,
            "shards": config.shards,
            "sharding": config.sharding,
            "policy": config.fleet_policy,
            "scheme": config.scheme,
            "epochs": config.epochs,
            "workers": config.workers,
            "k_global": config.n_groups,
            "splits": [list(split) for split in self.splits],
            "rebalances": self.rebalances,
            "n_events": config.n_events,
            "pubs_processed": pubs,
            "cross_shard_subscriptions": self.plan.n_cross_shard,
            "fleet_waste": self.total_waste,
            "fleet_cost": self.total_cost,
            "fleet_forwards": self.total_forwards,
            "virtual_horizon": self.horizon,
            "wall_seconds": self.wall_seconds,
            "events_per_wall_second": (
                config.n_events / self.wall_seconds
                if self.wall_seconds
                else 0.0
            ),
            "per_shard": [
                {
                    "shard": s.shard,
                    "k": s.k,
                    "events": s.service.n_events,
                    "registrations": s.n_registrations,
                    "waste": s.current_waste,
                    "cost": s.service.total_cost,
                    "forwards": s.forwards,
                    "seconds": s.seconds,
                }
                for s in self.shards
            ],
            "stamp": bench_stamp(),
        }
        return record

    def write_bench(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.bench_record(), fh, indent=2, sort_keys=True)
            fh.write("\n")


# ----------------------------------------------------------------------
def run_fleet(
    config: FleetConfig,
    finalize: bool = True,
    flight: bool = False,
    slo_spec: Optional[Sequence[Dict]] = None,
) -> FleetResult:
    """Route, split and replay one fleet soak end to end.

    ``slo_spec`` is a list of objective dicts (the ``--slo`` JSON);
    every shard runs a private engine over its own virtual signals.
    """
    start = time.perf_counter()
    scenario = build_preliminary_scenario(
        n_nodes=config.n_nodes,
        n_subscriptions=config.n_subscriptions,
        seed=config.seed,
    )
    shard_map = ShardMap(scenario.space, config.shards, config.sharding)
    plan = route_fleet_stream(config, scenario, shard_map)
    coordinator = FleetCoordinator(
        config.shards,
        config.n_groups,
        rebalance_threshold=config.rebalance_threshold,
    )
    scenario_kwargs = (
        ("n_nodes", config.n_nodes),
        ("n_subscriptions", config.n_subscriptions),
        ("seed", config.seed),
    )
    spec_tuple: Tuple = ()
    if slo_spec:
        spec_tuple = tuple(
            tuple(sorted(entry.items())) for entry in slo_spec
        )

    splits: List[List[int]] = []
    per_shard_epochs: List[List[ShardOutcome]] = [
        [] for _ in range(config.shards)
    ]
    carried: List[Tuple[float, Tuple]] = [
        (0.0, ()) for _ in range(config.shards)
    ]
    for epoch in range(config.epochs):
        final_epoch = epoch == config.epochs - 1
        splits.append(list(coordinator.split))
        tasks = []
        for shard in range(config.shards):
            registrations = tuple(
                (
                    reg.gid,
                    reg.node,
                    reg.rectangle,
                    config.fleet_policy == "replicate"
                    or shard == reg.home,
                )
                for reg in plan.live_at_epoch[epoch]
                if shard in reg.shards
            )
            busy_until, token_states = carried[shard]
            checkpoint_path = None
            if config.checkpoint_dir and final_epoch:
                checkpoint_path = os.path.join(
                    config.checkpoint_dir, f"shard-{shard}.npz"
                )
            tasks.append(
                ShardTask(
                    shard=shard,
                    epoch=epoch,
                    k=coordinator.split[shard],
                    fleet_policy=config.fleet_policy,
                    scenario_kwargs=scenario_kwargs,
                    config=replace(config, checkpoint_dir=None),
                    registrations=registrations,
                    events=tuple(plan.events[epoch][shard]),
                    owned_mask=(
                        shard_map.cell_to_shard == shard
                        if config.shards > 1
                        else None
                    ),
                    busy_until=busy_until,
                    token_states=token_states,
                    finalize=finalize and final_epoch,
                    flight=flight,
                    slo_spec=spec_tuple,
                    checkpoint_path=checkpoint_path,
                )
            )
        outcomes = _run_epoch(tasks, config.workers)
        for outcome in outcomes:
            per_shard_epochs[outcome.shard].append(outcome)
            carried[outcome.shard] = (
                outcome.busy_until, outcome.token_states,
            )
        if not final_epoch:
            now = max(outcome.busy_until for outcome in outcomes)
            coordinator.note_epoch(
                now, [outcome.current_waste for outcome in outcomes]
            )

    summaries = []
    flight_records: List[Dict] = []
    for shard in range(config.shards):
        epochs = per_shard_epochs[shard]
        last = epochs[-1]
        summaries.append(
            ShardSummary(
                shard=shard,
                k=last.k,
                service=_fold_service([o.service for o in epochs]),
                current_waste=last.current_waste,
                warm_waste=last.warm_waste,
                cold_waste=last.cold_waste,
                forwards=sum(o.forwards for o in epochs),
                forward_joins=sum(o.forward_joins for o in epochs),
                forward_leaves=sum(o.forward_leaves for o in epochs),
                n_registrations=last.n_registrations,
                seconds=sum(o.seconds for o in epochs),
            )
        )
    # flight records merged in (epoch, shard) order: deterministic for
    # any worker count, like every other number in the report
    for epoch in range(config.epochs):
        for shard in range(config.shards):
            flight_records.extend(
                per_shard_epochs[shard][epoch].flight_records
            )
    result = FleetResult(
        config=config,
        scenario_name=plan.scenario_name,
        shards=summaries,
        plan=plan,
        splits=splits,
        rebalances=coordinator.rebalances,
        wall_seconds=time.perf_counter() - start,
        flight_records=flight_records,
    )
    if config.checkpoint_dir:
        from ..persistence import save_fleet_state

        save_fleet_state(
            os.path.join(config.checkpoint_dir, "fleet.npz"),
            shard_map=shard_map,
            split=coordinator.split,
            rebalances=coordinator.rebalances,
            epochs=config.epochs,
        )
    return result
