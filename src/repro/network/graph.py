"""A weighted undirected graph with the algorithms the paper relies on.

The paper models the network as an undirected graph ``G = (V, E)`` with a
communication cost ``c_e >= 0`` on each edge (section 2).  We implement the
graph substrate from scratch: adjacency storage, Dijkstra single-source
shortest paths (used for dense-mode multicast routing trees), Prim's
minimum spanning tree (used for application-level multicast overlays) and
Kruskal-style union-find (used both here and by the MST clustering
algorithm).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Graph", "UnionFind", "ShortestPaths"]


class UnionFind:
    """Disjoint-set forest with union by rank and path compression."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("size must be non-negative")
        self._parent = list(range(n))
        self._rank = [0] * n
        self._components = n

    @property
    def components(self) -> int:
        """Number of disjoint components."""
        return self._components

    def find(self, x: int) -> int:
        """Representative of the component containing ``x``."""
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the components of ``a`` and ``b``; True if they differed."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def groups(self) -> Dict[int, List[int]]:
        """Map from component representative to sorted member list."""
        result: Dict[int, List[int]] = {}
        for x in range(len(self._parent)):
            result.setdefault(self.find(x), []).append(x)
        return result


@dataclass
class ShortestPaths:
    """Result of a single-source shortest path computation.

    ``dist[v]`` is the distance from the source; ``pred[v]`` is the
    predecessor of ``v`` on a shortest path (``-1`` for the source and for
    unreachable nodes).  The predecessor array encodes the dense-mode
    multicast routing tree rooted at the source.
    """

    source: int
    dist: List[float]
    pred: List[int]
    _dist_np: Optional["np.ndarray"] = field(
        default=None, init=False, repr=False, compare=False
    )
    _pred_np: Optional["np.ndarray"] = field(
        default=None, init=False, repr=False, compare=False
    )
    _full_tree_cost: Optional[float] = field(
        default=None, init=False, repr=False, compare=False
    )

    def arrays(self) -> Tuple["np.ndarray", "np.ndarray"]:
        """``(dist, pred)`` as numpy arrays (built once, then cached)."""
        if self._dist_np is None:
            import numpy as np

            self._dist_np = np.asarray(self.dist, dtype=np.float64)
            self._pred_np = np.asarray(self.pred, dtype=np.int64)
        return self._dist_np, self._pred_np

    def path_to(self, target: int) -> List[int]:
        """Node sequence from the source to ``target`` (inclusive)."""
        if math.isinf(self.dist[target]):
            raise ValueError(f"node {target} unreachable from {self.source}")
        path = [target]
        while path[-1] != self.source:
            path.append(self.pred[path[-1]])
        path.reverse()
        return path

    def reachable(self, target: int) -> bool:
        return not math.isinf(self.dist[target])

    def tree_cost(self, targets: Optional[Iterable[int]] = None) -> float:
        """Cost of the union of shortest paths from the source.

        With ``targets=None`` this is the full shortest-path-tree cost (the
        paper's broadcast cost for this publisher).  With an explicit
        target set it is the dense-mode multicast cost of delivering to
        exactly those nodes: the sum of edge costs over the union of the
        root-to-target paths.

        The walk towards the root is vectorised level by level: each pass
        charges the tree edges of the current frontier and replaces it
        with the not-yet-visited parents, so the Python-level iteration
        count is the tree depth, not the number of tree edges.
        """
        import numpy as np

        dist, pred = self.arrays()
        if targets is None:
            if self._full_tree_cost is None:
                reachable = np.isfinite(dist)
                reachable[self.source] = False
                nodes = np.nonzero(reachable)[0]
                self._full_tree_cost = float(
                    np.sum(dist[nodes] - dist[pred[nodes]])
                )
            return self._full_tree_cost
        frontier = np.asarray(
            targets if isinstance(targets, np.ndarray) else list(targets),
            dtype=np.int64,
        )
        if frontier.size == 0:
            return 0.0
        bad = np.isinf(dist[frontier])
        if bad.any():
            target = int(frontier[bad][0])
            raise ValueError(f"node {target} unreachable from {self.source}")
        n = len(dist)
        visited = np.zeros(n, dtype=bool)
        visited[self.source] = True
        level_mask = np.zeros(n, dtype=bool)
        total = 0.0
        while frontier.size:
            # boolean scatter both deduplicates the frontier and drops
            # already-visited nodes in O(n), avoiding a sort per level
            level_mask[frontier] = True
            level_mask &= ~visited
            level = np.nonzero(level_mask)[0]
            level_mask[level] = False
            if level.size == 0:
                break
            visited[level] = True
            parents = pred[level]
            total += float(np.sum(dist[level] - dist[parents]))
            frontier = parents[~visited[parents]]
        return total


class Graph:
    """Weighted undirected multigraph-free graph over nodes ``0..n-1``."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError("graph must have at least one node")
        self._n = n_nodes
        self._adj: List[Dict[int, float]] = [dict() for _ in range(n_nodes)]
        self._n_edges = 0
        self._version = 0
        self._down: set = set()
        # edges detached by a node failure, waiting to return when the
        # node comes back; keyed per down node as {neighbor: cost}
        self._stash: Dict[int, Dict[int, float]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, cost: float) -> None:
        """Add (or tighten) the undirected edge ``{u, v}``.

        Parallel edge insertions keep the cheaper cost, which matches how
        transit-stub generators resolve duplicate links.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise ValueError("self-loops are not allowed")
        if cost < 0:
            raise ValueError("edge costs must be non-negative")
        if u in self._down or v in self._down:
            raise ValueError("cannot add an edge incident to a failed node")
        existing = self._adj[u].get(v)
        if existing is None:
            self._n_edges += 1
            self._adj[u][v] = cost
            self._adj[v][u] = cost
            self._version += 1
        elif cost < existing:
            self._adj[u][v] = cost
            self._adj[v][u] = cost
            self._version += 1

    # ------------------------------------------------------------------
    # fault machinery: incremental removal and restoration
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic topology version, bumped on every mutation."""
        return self._version

    @property
    def failed_nodes(self) -> frozenset:
        """Nodes currently marked down."""
        return frozenset(self._down)

    def is_node_down(self, u: int) -> bool:
        self._check_node(u)
        return u in self._down

    def remove_edge(self, u: int, v: int) -> float:
        """Detach the edge ``{u, v}`` and return its cost.

        The edge may be live or stashed on a down endpoint (a link can
        fail while one of its ends is already down); either way it is
        gone until explicitly restored.
        """
        self._check_node(u)
        self._check_node(v)
        if v in self._adj[u]:
            cost = self._adj[u].pop(v)
            del self._adj[v][u]
            self._n_edges -= 1
            self._version += 1
            return cost
        for a, b in ((u, v), (v, u)):
            stash = self._stash.get(a)
            if stash is not None and b in stash:
                self._version += 1
                return stash.pop(b)
        raise KeyError(f"no edge between {u} and {v}")

    def restore_edge(self, u: int, v: int, cost: float) -> None:
        """Bring the edge ``{u, v}`` back.

        If an endpoint is currently down the edge is parked in that
        node's stash and returns to the graph when the node does.
        """
        self._check_node(u)
        self._check_node(v)
        if u in self._down:
            self._stash[u][v] = cost
            self._version += 1
        elif v in self._down:
            self._stash[v][u] = cost
            self._version += 1
        else:
            self.add_edge(u, v, cost)

    def remove_node(self, u: int) -> int:
        """Mark ``u`` down, detaching its incident edges; returns their
        count.  The edges are stashed and come back on :meth:`restore_node`."""
        self._check_node(u)
        if u in self._down:
            raise ValueError(f"node {u} is already down")
        stash = dict(self._adj[u])
        for v in stash:
            del self._adj[v][u]
        self._adj[u] = {}
        self._n_edges -= len(stash)
        self._stash[u] = stash
        self._down.add(u)
        self._version += 1
        return len(stash)

    def restore_node(self, u: int) -> None:
        """Bring ``u`` back up, re-attaching its stashed edges.

        Edges whose other endpoint is still down migrate to that node's
        stash so the link reappears once both ends are alive."""
        self._check_node(u)
        if u not in self._down:
            raise ValueError(f"node {u} is not down")
        self._down.discard(u)
        stash = self._stash.pop(u)
        self._version += 1
        for v, cost in stash.items():
            if v in self._down:
                self._stash[v][u] = cost
            else:
                self.add_edge(u, v, cost)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self._n

    @property
    def n_edges(self) -> int:
        return self._n_edges

    def has_edge(self, u: int, v: int) -> bool:
        self._check_node(u)
        self._check_node(v)
        return v in self._adj[u]

    def edge_cost(self, u: int, v: int) -> float:
        self._check_node(u)
        self._check_node(v)
        try:
            return self._adj[u][v]
        except KeyError:
            raise KeyError(f"no edge between {u} and {v}") from None

    def neighbors(self, u: int) -> Iterator[Tuple[int, float]]:
        """Iterate ``(neighbor, cost)`` pairs of node ``u``."""
        self._check_node(u)
        return iter(self._adj[u].items())

    def degree(self, u: int) -> int:
        self._check_node(u)
        return len(self._adj[u])

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate each undirected edge once as ``(u, v, cost)`` with u < v."""
        for u in range(self._n):
            for v, cost in self._adj[u].items():
                if u < v:
                    yield u, v, cost

    def total_edge_cost(self) -> float:
        return sum(cost for _, _, cost in self.edges())

    # ------------------------------------------------------------------
    # algorithms
    # ------------------------------------------------------------------
    def shortest_paths(self, source: int) -> ShortestPaths:
        """Dijkstra single-source shortest paths from ``source``."""
        self._check_node(source)
        dist = [math.inf] * self._n
        pred = [-1] * self._n
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, cost in self._adj[u].items():
                nd = d + cost
                if nd < dist[v]:
                    dist[v] = nd
                    pred[v] = u
                    heapq.heappush(heap, (nd, v))
        return ShortestPaths(source=source, dist=dist, pred=pred)

    def is_connected(self) -> bool:
        """True when every node is reachable from node 0."""
        seen = [False] * self._n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self._n

    def minimum_spanning_tree_cost(self) -> float:
        """Cost of an MST of a connected graph (Prim's algorithm)."""
        tree_edges = self.minimum_spanning_tree()
        return sum(cost for _, _, cost in tree_edges)

    def minimum_spanning_tree(self) -> List[Tuple[int, int, float]]:
        """Edges of an MST (Prim's algorithm).  Requires connectivity."""
        in_tree = [False] * self._n
        best: List[Tuple[float, int, int]] = [(0.0, 0, -1)]
        edges: List[Tuple[int, int, float]] = []
        added = 0
        while best and added < self._n:
            cost, u, parent = heapq.heappop(best)
            if in_tree[u]:
                continue
            in_tree[u] = True
            added += 1
            if parent >= 0:
                edges.append((parent, u, cost))
            for v, c in self._adj[u].items():
                if not in_tree[v]:
                    heapq.heappush(best, (c, v, u))
        if added != self._n:
            raise ValueError("graph is not connected; no spanning tree exists")
        return edges

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _check_node(self, u: int) -> None:
        if not 0 <= u < self._n:
            raise IndexError(f"node {u} out of range [0, {self._n})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n_nodes={self._n}, n_edges={self._n_edges})"


def metric_closure_mst_cost(
    distances: Sequence[Sequence[float]], members: Sequence[int]
) -> float:
    """MST cost among ``members`` in the metric closure of the network.

    ``distances`` is a matrix where ``distances[u][v]`` is the shortest-path
    distance between network nodes.  Application-level multicast (section
    5.1) connects group members by unicast paths forming a minimum spanning
    tree in this metric; the delivery cost is the tree's total weight.
    """
    nodes = list(dict.fromkeys(members))
    if len(nodes) <= 1:
        return 0.0
    in_tree = [False] * len(nodes)
    best = [math.inf] * len(nodes)
    best[0] = 0.0
    total = 0.0
    for _ in range(len(nodes)):
        u = min(
            (i for i in range(len(nodes)) if not in_tree[i]),
            key=lambda i: best[i],
        )
        if math.isinf(best[u]):
            raise ValueError("members are not mutually reachable")
        in_tree[u] = True
        total += best[u]
        du = distances[nodes[u]]
        for v in range(len(nodes)):
            if not in_tree[v]:
                d = du[nodes[v]]
                if d < best[v]:
                    best[v] = d
    return total
