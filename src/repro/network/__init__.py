"""Network substrate: graphs, transit-stub topologies, routing and
multicast cost models (replaces the paper's use of the GT-ITM package)."""

from .graph import Graph, ShortestPaths, UnionFind, metric_closure_mst_cost
from .gtitm import Topology, TransitStubGenerator, TransitStubParams
from .multicast import (
    application_multicast_cost,
    broadcast_cost,
    dense_multicast_cost,
    ideal_multicast_cost,
    overlay_multicast_cost,
    select_core,
    sparse_multicast_cost,
    split_reachable,
    unicast_cost,
)
from .routing import RoutingTables

__all__ = [
    "Graph",
    "ShortestPaths",
    "UnionFind",
    "metric_closure_mst_cost",
    "Topology",
    "TransitStubGenerator",
    "TransitStubParams",
    "RoutingTables",
    "unicast_cost",
    "broadcast_cost",
    "dense_multicast_cost",
    "ideal_multicast_cost",
    "application_multicast_cost",
    "overlay_multicast_cost",
    "sparse_multicast_cost",
    "select_core",
    "split_reachable",
]
