"""Transit-stub network topologies in the style of the GT-ITM package.

The paper (sections 3 and 5.1) generates its networks with GT-ITM [20]
using a transit-stub model: a small top level of *transit blocks* (domains)
whose *transit nodes* form the backbone, with *stubs* — access networks of
ordinary nodes — hanging off the transit nodes.  We reimplement that model
here.  The generator reproduces the three configurations used in the
preliminary analysis:

====== ============= ================= ================
nodes  transit nodes stubs per transit nodes in a stub
====== ============= ================= ================
100    4             3                 8
300    5             3                 20
600    4             3                 50
====== ============= ================= ================

and the section 5.1 configuration: three transit blocks, on average five
transit nodes per block, two stubs per transit node and twenty nodes per
stub (~600 nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .graph import Graph

__all__ = ["TransitStubParams", "Topology", "TransitStubGenerator"]


@dataclass(frozen=True)
class TransitStubParams:
    """Parameters of the transit-stub model.

    ``transit_nodes_per_block`` / ``stubs_per_transit`` / ``nodes_per_stub``
    are *average* counts; each instance is perturbed by ±``jitter`` (rounded,
    floored at 1) like GT-ITM's randomised sizes.  Edge costs are drawn
    uniformly from the per-layer ranges; GT-ITM similarly assigns larger
    routing weights to backbone links than to access links.
    """

    n_transit_blocks: int = 3
    transit_nodes_per_block: int = 5
    stubs_per_transit: int = 2
    nodes_per_stub: int = 20
    jitter: int = 0
    intra_stub_cost: Tuple[float, float] = (1.0, 4.0)
    stub_transit_cost: Tuple[float, float] = (8.0, 16.0)
    intra_transit_cost: Tuple[float, float] = (10.0, 20.0)
    inter_transit_cost: Tuple[float, float] = (20.0, 40.0)
    extra_edge_prob: float = 0.15

    def __post_init__(self) -> None:
        if self.n_transit_blocks < 1:
            raise ValueError("need at least one transit block")
        if self.transit_nodes_per_block < 1:
            raise ValueError("need at least one transit node per block")
        if self.stubs_per_transit < 0:
            raise ValueError("stubs per transit node must be non-negative")
        if self.nodes_per_stub < 1:
            raise ValueError("stubs must contain at least one node")
        if not 0.0 <= self.extra_edge_prob <= 1.0:
            raise ValueError("extra_edge_prob must be a probability")

    @staticmethod
    def preliminary(n_nodes: int) -> "TransitStubParams":
        """The three configurations from the section 3 table."""
        table = {
            100: TransitStubParams(
                n_transit_blocks=1,
                transit_nodes_per_block=4,
                stubs_per_transit=3,
                nodes_per_stub=8,
            ),
            300: TransitStubParams(
                n_transit_blocks=1,
                transit_nodes_per_block=5,
                stubs_per_transit=3,
                nodes_per_stub=20,
            ),
            600: TransitStubParams(
                n_transit_blocks=1,
                transit_nodes_per_block=4,
                stubs_per_transit=3,
                nodes_per_stub=50,
            ),
        }
        try:
            return table[n_nodes]
        except KeyError:
            raise ValueError(
                f"no preliminary configuration for {n_nodes} nodes; "
                f"known sizes: {sorted(table)}"
            ) from None

    @staticmethod
    def evaluation() -> "TransitStubParams":
        """The section 5.1 configuration (three blocks, ~600 nodes)."""
        return TransitStubParams(
            n_transit_blocks=3,
            transit_nodes_per_block=5,
            stubs_per_transit=2,
            nodes_per_stub=20,
        )


@dataclass
class Topology:
    """A generated transit-stub network.

    Besides the weighted graph itself, the topology records the role of
    every node: the transit block it belongs to, and — for stub nodes — the
    identifier of its stub.  The workload generators use this structure for
    the regional attribute (section 3) and for the Zipf placement of
    subscriptions across blocks and stubs (section 5.1).
    """

    graph: Graph
    transit_block: List[int]
    stub_of: List[int]
    stubs: List[List[int]]
    stub_block: List[int]
    transit_nodes: List[int]

    @property
    def n_nodes(self) -> int:
        return self.graph.n_nodes

    @property
    def n_stubs(self) -> int:
        return len(self.stubs)

    @property
    def n_transit_blocks(self) -> int:
        return max(self.transit_block) + 1 if self.transit_block else 0

    def stub_nodes(self) -> List[int]:
        """All non-transit nodes."""
        return [v for v in range(self.n_nodes) if self.stub_of[v] >= 0]

    def stubs_in_block(self, block: int) -> List[int]:
        """Stub identifiers belonging to a transit block."""
        return [s for s, b in enumerate(self.stub_block) if b == block]

    def validate(self) -> None:
        """Sanity-check internal consistency; raises on violation."""
        if len(self.transit_block) != self.n_nodes:
            raise AssertionError("transit_block size mismatch")
        if len(self.stub_of) != self.n_nodes:
            raise AssertionError("stub_of size mismatch")
        for stub_id, members in enumerate(self.stubs):
            for v in members:
                if self.stub_of[v] != stub_id:
                    raise AssertionError(f"node {v} not mapped to stub {stub_id}")
        for v in self.transit_nodes:
            if self.stub_of[v] != -1:
                raise AssertionError(f"transit node {v} has a stub id")
        if not self.graph.is_connected():
            raise AssertionError("topology is not connected")


class TransitStubGenerator:
    """Randomised transit-stub topology builder."""

    def __init__(self, params: TransitStubParams, rng: np.random.Generator) -> None:
        self.params = params
        self.rng = rng

    # ------------------------------------------------------------------
    def generate(self) -> Topology:
        """Generate a connected transit-stub topology."""
        params = self.params
        rng = self.rng

        transit_block: List[int] = []
        stub_of: List[int] = []
        stubs: List[List[int]] = []
        stub_block: List[int] = []
        transit_nodes: List[int] = []
        edges: List[Tuple[int, int, float]] = []
        blocks: List[List[int]] = []

        next_node = 0

        # 1. transit blocks and their nodes
        for block in range(params.n_transit_blocks):
            size = self._perturb(params.transit_nodes_per_block)
            members = list(range(next_node, next_node + size))
            next_node += size
            blocks.append(members)
            transit_nodes.extend(members)
            transit_block.extend([block] * size)
            stub_of.extend([-1] * size)
            edges.extend(
                self._connected_subgraph(members, params.intra_transit_cost)
            )

        # 2. backbone between blocks: a random tree over blocks plus the
        #    occasional extra inter-block link
        for i in range(1, params.n_transit_blocks):
            j = int(rng.integers(0, i))
            edges.append(self._inter_block_edge(blocks[i], blocks[j]))
        for i in range(params.n_transit_blocks):
            for j in range(i + 1, params.n_transit_blocks):
                if rng.random() < params.extra_edge_prob:
                    edges.append(self._inter_block_edge(blocks[i], blocks[j]))

        # 3. stubs hanging off transit nodes
        for block, members in enumerate(blocks):
            for transit in members:
                n_stubs = self._perturb(params.stubs_per_transit)
                for _ in range(n_stubs):
                    size = self._perturb(params.nodes_per_stub)
                    stub_members = list(range(next_node, next_node + size))
                    next_node += size
                    stub_id = len(stubs)
                    stubs.append(stub_members)
                    stub_block.append(block)
                    transit_block.extend([block] * size)
                    stub_of.extend([stub_id] * size)
                    edges.extend(
                        self._connected_subgraph(
                            stub_members, params.intra_stub_cost
                        )
                    )
                    gateway = stub_members[int(rng.integers(0, size))]
                    edges.append(
                        (transit, gateway, self._cost(params.stub_transit_cost))
                    )

        graph = Graph(next_node)
        for u, v, cost in edges:
            if u != v:
                graph.add_edge(u, v, cost)

        topology = Topology(
            graph=graph,
            transit_block=transit_block,
            stub_of=stub_of,
            stubs=stubs,
            stub_block=stub_block,
            transit_nodes=transit_nodes,
        )
        topology.validate()
        return topology

    # ------------------------------------------------------------------
    def _perturb(self, mean: int) -> int:
        """Randomise a size parameter by ±jitter, floored at 1."""
        if self.params.jitter == 0:
            return max(1, mean)
        delta = int(self.rng.integers(-self.params.jitter, self.params.jitter + 1))
        return max(1, mean + delta)

    def _cost(self, cost_range: Tuple[float, float]) -> float:
        lo, hi = cost_range
        return float(self.rng.uniform(lo, hi))

    def _connected_subgraph(
        self, members: Sequence[int], cost_range: Tuple[float, float]
    ) -> List[Tuple[int, int, float]]:
        """Random connected subgraph: random tree + extra chords."""
        edges: List[Tuple[int, int, float]] = []
        for i in range(1, len(members)):
            j = int(self.rng.integers(0, i))
            edges.append((members[i], members[j], self._cost(cost_range)))
        n = len(members)
        if n > 2 and self.params.extra_edge_prob > 0:
            n_extra = int(self.rng.binomial(n, self.params.extra_edge_prob))
            for _ in range(n_extra):
                i, j = self.rng.choice(n, size=2, replace=False)
                edges.append(
                    (members[int(i)], members[int(j)], self._cost(cost_range))
                )
        return edges

    def _inter_block_edge(
        self, block_a: Sequence[int], block_b: Sequence[int]
    ) -> Tuple[int, int, float]:
        u = block_a[int(self.rng.integers(0, len(block_a)))]
        v = block_b[int(self.rng.integers(0, len(block_b)))]
        return (u, v, self._cost(self.params.inter_transit_cost))
