"""Routing state precomputed over a topology.

The cost evaluations of section 5 repeatedly need, for every publisher
node, the shortest-path tree rooted there (dense-mode multicast routing)
and, for application-level multicast, pairwise shortest-path distances
between group members.  :class:`RoutingTables` computes both lazily and
memoises them, so a simulation touching only a handful of publisher nodes
never pays for all-pairs Dijkstra.

Fault injection mutates the topology *in place* through the
``fail_link`` / ``heal_link`` / ``fail_node`` / ``heal_node`` methods.
Each mutation invalidates exactly the cached shortest-path trees the
change can affect (the rest stay warm):

* a removed edge breaks only the trees that use it as a tree edge;
* a restored edge invalidates only trees it could shorten
  (``dist[u] + c < dist[v]`` in either direction);
* a removed node invalidates trees that could reach it;
* a restored node invalidates trees that can reach one of its
  re-attached neighbors (otherwise it stays unreachable and nothing
  changes).

Downstream caches (the dispatcher's multicast-cost memo) subscribe via
:meth:`add_invalidation_listener` and are told which sources were
dropped, so chaos runs invalidate surgically instead of flushing.
"""

from __future__ import annotations

import math
import weakref
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from ..obs import get_registry
from .graph import Graph, ShortestPaths

__all__ = ["RoutingTables"]

#: an invalidation callback; receives the set of dropped shortest-path
#: sources, or ``None`` meaning "assume everything changed"
InvalidationListener = Callable[[Optional[FrozenSet[int]]], None]


class RoutingTables:
    """Memoised shortest-path state for a mutable graph."""

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._sp: Dict[int, ShortestPaths] = {}
        self._dist_matrix: Optional[np.ndarray] = None
        self._listeners: List[weakref.ref] = []
        # cost of each currently-failed link, for restoration
        self._down_links: Dict[Tuple[int, int], float] = {}

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def topology_version(self) -> int:
        """The underlying graph's mutation counter."""
        return self._graph.version

    @property
    def failed_nodes(self) -> frozenset:
        return self._graph.failed_nodes

    @property
    def down_links(self) -> Dict[Tuple[int, int], float]:
        """Currently-failed links as ``{(u, v): cost}`` with ``u < v``."""
        return dict(self._down_links)

    # ------------------------------------------------------------------
    def shortest_paths(self, source: int) -> ShortestPaths:
        """Shortest paths from ``source``, computed once and cached."""
        table = self._sp.get(source)
        if table is None:
            table = self._graph.shortest_paths(source)
            self._sp[source] = table
        return table

    def distance(self, u: int, v: int) -> float:
        """Shortest-path distance between two nodes."""
        if self._dist_matrix is not None:
            return float(self._dist_matrix[u, v])
        return self.shortest_paths(u).dist[v]

    # ------------------------------------------------------------------
    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest path distances (computed once).

        Needed by application-level multicast, whose overlay tree is a
        minimum spanning tree in the metric closure of the network.
        """
        if self._dist_matrix is None:
            n = self._graph.n_nodes
            matrix = np.empty((n, n), dtype=np.float64)
            for source in range(n):
                matrix[source, :] = self.shortest_paths(source).dist
            self._dist_matrix = matrix
        return self._dist_matrix

    # ------------------------------------------------------------------
    def precompute(self, sources: Iterable[int]) -> None:
        """Eagerly build shortest-path trees for the given sources."""
        for source in sources:
            self.shortest_paths(source)

    def cached_sources(self) -> List[int]:
        """Sources whose shortest-path trees are already built."""
        return sorted(self._sp)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def add_invalidation_listener(self, listener: InvalidationListener) -> None:
        """Register a callback fired after every topology mutation.

        Listeners are held weakly: a dispatcher that goes away (brokers
        build a fresh one per rebuild) is pruned automatically instead of
        leaking for the lifetime of the routing tables.
        """
        try:
            ref: weakref.ref = weakref.WeakMethod(listener)
        except TypeError:
            ref = weakref.ref(listener)
        self._listeners.append(ref)

    def fail_link(self, u: int, v: int) -> float:
        """Take the link ``{u, v}`` down; returns its cost."""
        affected = frozenset(
            s
            for s, sp in self._sp.items()
            if sp.pred[v] == u or sp.pred[u] == v
        )
        cost = self._graph.remove_edge(u, v)
        self._down_links[(min(u, v), max(u, v))] = cost
        self._record_fault("link_down")
        self._invalidate(affected)
        return cost

    def heal_link(self, u: int, v: int) -> float:
        """Bring a previously-failed link back; returns its cost."""
        key = (min(u, v), max(u, v))
        try:
            cost = self._down_links.pop(key)
        except KeyError:
            raise KeyError(f"link ({u}, {v}) is not down") from None
        self._graph.restore_edge(u, v, cost)
        self._record_fault("link_up")
        if self._graph.is_node_down(u) or self._graph.is_node_down(v):
            # parked in a node stash; no live topology change yet
            self._invalidate(frozenset())
            return cost
        affected = frozenset(
            s
            for s, sp in self._sp.items()
            if sp.dist[u] + cost < sp.dist[v]
            or sp.dist[v] + cost < sp.dist[u]
        )
        self._invalidate(affected)
        return cost

    def fail_node(self, u: int) -> int:
        """Take node ``u`` down; returns the number of detached links."""
        affected = frozenset(
            s for s, sp in self._sp.items() if not math.isinf(sp.dist[u])
        )
        detached = self._graph.remove_node(u)
        self._record_fault("node_down")
        self._invalidate(affected)
        return detached

    def heal_node(self, u: int) -> None:
        """Bring node ``u`` back up, re-attaching its stashed links."""
        self._graph.restore_node(u)
        neighbors = [v for v, _ in self._graph.neighbors(u)]
        affected = set()
        for s, sp in self._sp.items():
            if s == u or any(not math.isinf(sp.dist[v]) for v in neighbors):
                affected.add(s)
        self._record_fault("node_up")
        self._invalidate(frozenset(affected))

    # ------------------------------------------------------------------
    def _invalidate(self, sources: Optional[FrozenSet[int]]) -> None:
        """Drop the named cached tables (all when ``None``) and notify."""
        if sources is None:
            self._sp.clear()
        else:
            for s in sources:
                self._sp.pop(s, None)
        self._dist_matrix = None
        if sources is None or sources:
            get_registry().counter(
                "routing_invalidations_total",
                "cached shortest-path trees dropped by topology changes",
            ).inc(len(sources) if sources is not None else 1)
        self._notify(sources)

    def _notify(self, sources: Optional[FrozenSet[int]]) -> None:
        live: List[weakref.ref] = []
        for ref in self._listeners:
            listener = ref()
            if listener is not None:
                listener(sources)
                live.append(ref)
        self._listeners = live

    @staticmethod
    def _record_fault(kind: str) -> None:
        get_registry().counter(
            "network_faults_total", "topology fault events applied"
        ).inc(kind=kind)
