"""Routing state precomputed over a topology.

The cost evaluations of section 5 repeatedly need, for every publisher
node, the shortest-path tree rooted there (dense-mode multicast routing)
and, for application-level multicast, pairwise shortest-path distances
between group members.  :class:`RoutingTables` computes both lazily and
memoises them, so a simulation touching only a handful of publisher nodes
never pays for all-pairs Dijkstra.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .graph import Graph, ShortestPaths

__all__ = ["RoutingTables"]


class RoutingTables:
    """Memoised shortest-path state for a fixed graph."""

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._sp: Dict[int, ShortestPaths] = {}
        self._dist_matrix: Optional[np.ndarray] = None

    @property
    def graph(self) -> Graph:
        return self._graph

    # ------------------------------------------------------------------
    def shortest_paths(self, source: int) -> ShortestPaths:
        """Shortest paths from ``source``, computed once and cached."""
        table = self._sp.get(source)
        if table is None:
            table = self._graph.shortest_paths(source)
            self._sp[source] = table
        return table

    def distance(self, u: int, v: int) -> float:
        """Shortest-path distance between two nodes."""
        if self._dist_matrix is not None:
            return float(self._dist_matrix[u, v])
        return self.shortest_paths(u).dist[v]

    # ------------------------------------------------------------------
    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest path distances (computed once).

        Needed by application-level multicast, whose overlay tree is a
        minimum spanning tree in the metric closure of the network.
        """
        if self._dist_matrix is None:
            n = self._graph.n_nodes
            matrix = np.empty((n, n), dtype=np.float64)
            for source in range(n):
                matrix[source, :] = self.shortest_paths(source).dist
            self._dist_matrix = matrix
        return self._dist_matrix

    # ------------------------------------------------------------------
    def precompute(self, sources: Iterable[int]) -> None:
        """Eagerly build shortest-path trees for the given sources."""
        for source in sources:
            self.shortest_paths(source)

    def cached_sources(self) -> List[int]:
        """Sources whose shortest-path trees are already built."""
        return sorted(self._sp)
