"""Delivery cost models: unicast, broadcast, multicast (two flavours).

Section 5.1 evaluates multicast-group quality under two frameworks:

* **Network-supported (dense-mode) multicast** — the routing tree is the
  shortest-path tree rooted at the publisher, pruned to the group members;
  the delivery cost is the total cost of the edges in the union of the
  root-to-member shortest paths.
* **Application-level multicast** — group members communicate by unicast
  and forward along a minimum spanning tree built in the metric closure
  (member-to-member shortest path distances).

The *ideal multicast* of Tables 1 and 2 is dense-mode multicast to exactly
the set of interested nodes, i.e. a dedicated multicast group per event.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Set

import numpy as np

from .graph import metric_closure_mst_cost
from .routing import RoutingTables

__all__ = [
    "unicast_cost",
    "sparse_multicast_cost",
    "select_core",
    "broadcast_cost",
    "dense_multicast_cost",
    "ideal_multicast_cost",
    "application_multicast_cost",
    "overlay_multicast_cost",
    "split_reachable",
]


def split_reachable(
    routing: RoutingTables, publisher: int, targets: Iterable[int]
) -> "tuple[np.ndarray, np.ndarray]":
    """Partition target nodes into ``(reachable, unreachable)``.

    Fault injection can disconnect the network; the cost helpers above
    raise on unreachable targets, so degraded-delivery paths split the
    target set first and count the unreachable part as lost.
    """
    nodes = np.asarray(
        targets if isinstance(targets, np.ndarray) else list(targets),
        dtype=np.int64,
    )
    if nodes.size == 0:
        return nodes, nodes.copy()
    dist, _ = routing.shortest_paths(publisher).arrays()
    ok = np.isfinite(dist[nodes])
    return nodes[ok], nodes[~ok]


def _unique_nodes(nodes: Iterable[int]) -> List[int]:
    return list(dict.fromkeys(nodes))


def unicast_cost(
    routing: RoutingTables, publisher: int, targets: Iterable[int]
) -> float:
    """Cost of sending one copy of the message to each target node.

    Each copy travels the shortest path independently, so shared prefix
    edges are paid once *per copy* — this is what makes unicast expensive
    for popular events.  Multiple subscribers co-located on one node
    receive a single copy (the node's broker fans out locally at no
    network cost), so targets are de-duplicated.
    """
    sp = routing.shortest_paths(publisher)
    nodes = np.asarray(
        targets if isinstance(targets, np.ndarray) else list(targets),
        dtype=np.int64,
    )
    if nodes.size == 0:
        return 0.0
    nodes = np.unique(nodes)
    dist, _ = sp.arrays()
    d = dist[nodes]
    bad = np.isinf(d)
    if bad.any():
        node = int(nodes[bad][0])
        raise ValueError(f"node {node} unreachable from publisher {publisher}")
    return float(d.sum())


def broadcast_cost(routing: RoutingTables, publisher: int) -> float:
    """Cost of flooding every node via the publisher's shortest-path tree.

    Independent of the subscription population — this is the flat line in
    Tables 1 and 2.
    """
    return routing.shortest_paths(publisher).tree_cost()


def dense_multicast_cost(
    routing: RoutingTables, publisher: int, members: Iterable[int]
) -> float:
    """Dense-mode multicast cost of delivering to ``members``.

    The routing tree is the shortest-path tree rooted at the publisher;
    the message traverses the union of root-to-member paths and each edge
    in that union is paid exactly once.
    """
    return routing.shortest_paths(publisher).tree_cost(_unique_nodes(members))


def ideal_multicast_cost(
    routing: RoutingTables, publisher: int, interested: Iterable[int]
) -> float:
    """Cost of the per-event ideal group: exactly the interested nodes.

    This is the 100 %-improvement reference of section 5.2; realising it
    for every event would require up to ``2^N_S`` multicast groups.
    """
    return dense_multicast_cost(routing, publisher, interested)


def application_multicast_cost(
    routing: RoutingTables, publisher: int, members: Iterable[int]
) -> float:
    """Application-level multicast cost.

    The publisher and the group members form an overlay: a minimum
    spanning tree in the metric closure of the network (edge weight =
    shortest-path distance between the two members).  Every overlay edge
    is a unicast transfer, so the delivery cost is the tree's total
    weight.  Always at least the dense-mode cost for the same group.
    """
    nodes = _unique_nodes(members)
    if publisher not in nodes:
        nodes.append(publisher)
    if len(nodes) <= 1:
        return 0.0
    return metric_closure_mst_cost(routing.distance_matrix(), nodes)


def sparse_multicast_cost(
    routing: RoutingTables,
    publisher: int,
    members: Iterable[int],
    core: int,
) -> float:
    """Sparse-mode (shared-tree) multicast cost.

    Section 5.1 notes routers implement dense *and* sparse mode; the
    paper evaluates dense mode.  This implements the alternative for
    comparison: the group shares one tree rooted at a rendezvous-point
    (core) node.  The publisher unicasts the message to the core, which
    forwards it down the union of core-to-member shortest paths.  The
    shared tree avoids per-(publisher, group) state at the price of a
    detour through the core.
    """
    nodes = _unique_nodes(members)
    if not nodes:
        return 0.0
    to_core = routing.shortest_paths(publisher).dist[core]
    if math.isinf(to_core):
        raise ValueError(f"core {core} unreachable from publisher {publisher}")
    return to_core + routing.shortest_paths(core).tree_cost(nodes)


def select_core(routing: RoutingTables) -> int:
    """Pick a rendezvous point: the 1-median of the network.

    The node minimising the total shortest-path distance to all other
    nodes — the natural static core for a shared multicast tree.  Ties
    break towards the lowest node id, so core election is a pure
    function of the topology (no array-layout or argmin-implementation
    dependence).
    """
    totals = routing.distance_matrix().sum(axis=1)
    return int(np.flatnonzero(totals == totals.min())[0])


def overlay_multicast_cost(
    routing: RoutingTables,
    publisher: int,
    members: Iterable[int],
    overlay=None,
) -> float:
    """Structured-overlay (rendezvous-tree) multicast cost.

    The group hashes to a rendezvous key on a Pastry-like ring; the
    publisher routes to the key's owner (the root) over the overlay and
    the message flows down a Scribe-like dissemination tree formed by
    the members' proximity-anycast joins — each overlay hop is one
    underlay unicast, each tree edge one underlay link (traversed join
    paths become forwarders).  ``overlay`` may supply a configured
    :class:`repro.dht.RendezvousDelivery`; by default the per-routing
    shared instance is used (see :func:`repro.dht.overlay_for`), so
    cached trees survive — and heal across — topology changes.
    """
    if overlay is None:
        from ..dht import overlay_for

        overlay = overlay_for(routing)
    return overlay.group_cost(
        publisher, np.asarray(_unique_nodes(members), dtype=np.int64)
    )
