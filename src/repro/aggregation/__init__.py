"""Subscription aggregation & subsumption (pre-clustering reduction).

Collapses identical subscription rectangles into weighted aggregates
with exact multiplicity accounting, indexes containment between the
distinct rectangles, and exposes aggregate-level views whose results
expand back to per-subscriber values byte-identical to the unaggregated
computation.  See docs/aggregation.md for the algorithm and the
equivalence argument.
"""

from .online import AggregateSnapshot, OnlineAggregator
from .subsume import AggregateSet, aggregate_subscriptions
from .view import AggregateView, build_aggregate_cells, expand_cell_set

__all__ = [
    "AggregateSet",
    "AggregateSnapshot",
    "AggregateView",
    "OnlineAggregator",
    "aggregate_subscriptions",
    "build_aggregate_cells",
    "expand_cell_set",
]
