"""Subscription aggregation: collapse identical rectangles, index containment.

At millions of subscriptions the width ``m`` of the membership matrix
dominates every hot path — the pairwise fit, the K-means passes, the
grid build and the batch interest sweep all scale with it.  Real
workloads are heavily skewed (Shi et al., "Towards Scalable Subscription
Aggregation and Real Time Event Matching in a Large-Scale Content-Based
Network"): many subscribers register the *same* rectangle, and many more
register rectangles contained in a popular one.

This module detects both:

* **identical** rectangles are collapsed into one *aggregate* carrying a
  multiplicity (how many subscription rows it stands for) — the exact,
  lossless reduction every downstream consumer can run on;
* **contained** rectangles are linked into a containment forest (parent
  = smallest strictly-covering aggregate, found with the R-tree's
  :meth:`~repro.matching.rtree.RTree.containing` query) used for
  hierarchical matching and for reporting how much subsumption the
  workload carries.

The invariants the test battery enforces:

* multiplicities sum to the number of live subscription rows;
* expanding an aggregate-level result back to subscriber level is
  byte-identical to the unaggregated computation (matching, grid build,
  fits, delivery stats);
* ``expand_rows`` (de-aggregation) reproduces the original bounds
  exactly.

Aggregates are ordered by their smallest member subscriber id.  That
ordering is load-bearing: it makes the lexicographic order of packed
grid-cell membership rows over aggregate columns coincide with the
order over subscriber columns, so ``np.unique`` produces hypercells in
the same order with or without aggregation (see docs/aggregation.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..matching.rtree import RTree

__all__ = ["AggregateSet", "aggregate_subscriptions"]

#: below this many aggregates the containment forest is built with one
#: dense broadcast; above it the O(n^2) pair matrix would dominate and
#: the R-tree query loop wins
_DENSE_FOREST_LIMIT = 4096


@dataclass(frozen=True)
class AggregateSet:
    """The distinct live rectangles of a subscription set, with members.

    ``los``/``his`` are ``(n_agg, N)`` bound matrices in min-member
    order; ``members[a]``/``owners[a]`` list the subscription rows and
    subscriber ids collapsed into aggregate ``a`` (both ascending);
    ``agg_of_row`` maps every subscription row to its aggregate (``-1``
    for departed rows); ``parent`` links each aggregate to its smallest
    strictly-containing aggregate (``-1`` for roots).
    """

    los: np.ndarray
    his: np.ndarray
    members: Tuple[np.ndarray, ...]
    owners: Tuple[np.ndarray, ...]
    agg_of_row: np.ndarray
    multiplicity: np.ndarray
    parent: np.ndarray
    n_subscriptions: int
    _children: Optional[Tuple[np.ndarray, ...]] = field(
        default=None, compare=False, repr=False
    )

    # ------------------------------------------------------------------
    @property
    def n_aggregates(self) -> int:
        return len(self.multiplicity)

    @property
    def aggregation_ratio(self) -> float:
        """Live subscriptions per aggregate (1.0 = nothing collapsed)."""
        if self.n_aggregates == 0:
            return 1.0
        return self.n_subscriptions / self.n_aggregates

    @property
    def n_roots(self) -> int:
        return int(np.sum(self.parent < 0))

    @property
    def n_contained(self) -> int:
        """Aggregates strictly contained in some other aggregate."""
        return int(np.sum(self.parent >= 0))

    def children(self) -> Tuple[np.ndarray, ...]:
        """Child lists of the containment forest (ascending, cached)."""
        cached = object.__getattribute__(self, "_children")
        if cached is None:
            lists: List[List[int]] = [[] for _ in range(self.n_aggregates)]
            for child, par in enumerate(self.parent):
                if par >= 0:
                    lists[int(par)].append(child)
            cached = tuple(
                np.asarray(kids, dtype=np.int64) for kids in lists
            )
            object.__setattr__(self, "_children", cached)
        return cached

    def roots(self) -> np.ndarray:
        return np.nonzero(self.parent < 0)[0].astype(np.int64)

    # ------------------------------------------------------------------
    def subscriber_map(self, n_subscribers: int) -> np.ndarray:
        """Aggregate index per subscriber id (``-1`` for departed ids).

        Requires each live subscriber to own exactly one subscription
        row — the shape every generator and the broker produce — since
        a subscriber with several rows belongs to several aggregates.
        """
        sub_map = np.full(n_subscribers, -1, dtype=np.int64)
        total = 0
        for a, owner_list in enumerate(self.owners):
            if len(owner_list) != len(self.members[a]):
                raise ValueError(
                    "subscriber_map needs one subscription row per "
                    "subscriber; some subscriber owns several rows"
                )
            sub_map[owner_list] = a
            total += len(owner_list)
        if total != self.n_subscriptions:
            raise ValueError(
                "subscriber_map needs one subscription row per subscriber"
            )
        return sub_map

    def expand_rows(self, n_rows: int) -> Tuple[np.ndarray, np.ndarray]:
        """De-aggregate: per-row ``(los, his)`` bounds reconstructed from
        the aggregates.  Departed rows come back blanked
        (``lo=+inf, hi=-inf``), exactly as :class:`SubscriptionSet`
        stores them — the round trip is the identity.
        """
        n_dims = self.los.shape[1]
        los = np.full((n_rows, n_dims), np.inf, dtype=np.float64)
        his = np.full((n_rows, n_dims), -np.inf, dtype=np.float64)
        alive = self.agg_of_row[:n_rows] >= 0
        rows = np.nonzero(alive)[0]
        los[rows] = self.los[self.agg_of_row[rows]]
        his[rows] = self.his[self.agg_of_row[rows]]
        return los, his


def _containment_forest(los: np.ndarray, his: np.ndarray) -> np.ndarray:
    """Parent links over distinct rectangles: the smallest (by volume,
    ties by index) aggregate strictly containing each one, or ``-1``.

    Distinct bounds make proper containment a strict partial order, so
    the links always form a forest.
    """
    n = len(los)
    parent = np.full(n, -1, dtype=np.int64)
    if n <= 1:
        return parent
    spans = np.clip(his, -1e18, 1e18) - np.clip(los, -1e18, 1e18)
    volumes = np.prod(np.maximum(spans, 0.0), axis=1)
    if n <= _DENSE_FOREST_LIMIT:
        # one broadcast over all (parent, child) pairs.  Bound-wise
        # comparison equals ``Rectangle.contains_rectangle`` for
        # non-empty children (half-open algebra, inf bounds compare
        # fine); an empty child is contained in everything; an empty
        # parent can never pass the bound test against a non-empty
        # child (its collapsed side would have to stretch around the
        # child's positive span)
        contains = np.all(los[:, None, :] <= los[None, :, :], axis=2)
        contains &= np.all(his[:, None, :] >= his[None, :, :], axis=2)
        contains[:, np.any(his <= los, axis=1)] = True
        np.fill_diagonal(contains, False)
        masked = np.where(contains, volumes[:, None], np.inf)
        best = np.argmin(masked, axis=0)  # ties -> lowest index
        found = contains.any(axis=0)
        parent[found] = best[found]
        return parent
    tree = RTree.from_bounds(los, his)
    for a in range(n):
        candidates = tree.containing((los[a], his[a]))
        candidates = candidates[candidates != a]
        if len(candidates) == 0:
            continue
        best = candidates[int(np.argmin(volumes[candidates]))]
        parent[a] = int(best)
    return parent


def aggregate_subscriptions(subscriptions) -> AggregateSet:
    """Group the live rows of a :class:`SubscriptionSet` by rectangle.

    Rows with identical bounds become one aggregate; aggregates are
    ordered by smallest member subscriber id (ties by smallest row).
    """
    los, his = subscriptions.bounds()
    owners = subscriptions.row_owners
    alive_rows = np.nonzero(subscriptions.alive_rows)[0]
    n_rows = len(owners)
    agg_of_row = np.full(n_rows, -1, dtype=np.int64)

    if len(alive_rows) == 0:
        return AggregateSet(
            los=np.empty((0, los.shape[1]), dtype=np.float64),
            his=np.empty((0, his.shape[1]), dtype=np.float64),
            members=(),
            owners=(),
            agg_of_row=agg_of_row,
            multiplicity=np.empty(0, dtype=np.int64),
            parent=np.empty(0, dtype=np.int64),
            n_subscriptions=0,
        )

    keys = np.concatenate(
        [los[alive_rows], his[alive_rows]], axis=1
    )
    uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1)
    order = np.argsort(inverse, kind="stable")
    boundaries = np.nonzero(np.diff(inverse[order]))[0] + 1
    groups = np.split(alive_rows[order], boundaries)

    min_owner = np.array(
        [owners[g].min() for g in groups], dtype=np.int64
    )
    min_row = np.array([g[0] for g in groups], dtype=np.int64)
    perm = np.lexsort((min_row, min_owner))

    n_agg = len(groups)
    members = tuple(np.sort(groups[p]) for p in perm)
    owner_lists = tuple(
        np.unique(owners[member_rows]) for member_rows in members
    )
    for a, member_rows in enumerate(members):
        agg_of_row[member_rows] = a

    n_dims = los.shape[1]
    agg_los = uniq[perm, :n_dims].copy()
    agg_his = uniq[perm, n_dims:].copy()
    multiplicity = np.array(
        [len(member_rows) for member_rows in members], dtype=np.int64
    )
    parent = _containment_forest(agg_los, agg_his)
    return AggregateSet(
        los=agg_los,
        his=agg_his,
        members=members,
        owners=owner_lists,
        agg_of_row=agg_of_row,
        multiplicity=multiplicity,
        parent=parent,
        n_subscriptions=int(len(alive_rows)),
    )
