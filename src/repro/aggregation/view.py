"""Aggregate-level views that expand back to exact subscriber results.

:class:`AggregateView` answers the same interest queries as
:class:`~repro.workload.subscriptions.SubscriptionSet` — identical
sorted subscriber-id arrays — by testing the ``n_agg`` distinct
rectangles instead of all ``m`` rows and expanding hits through the
aggregate member lists.  Single-point matching descends the containment
forest (a point inside a contained rectangle is necessarily inside its
covering parent, so children only need testing under matched parents);
the batch sweep broadcasts against the aggregate bounds directly.

:func:`build_aggregate_cells` runs the grid preprocessing stage on
aggregate columns and expands the result: the returned pair is a
*weighted* aggregate :class:`~repro.grid.cells.CellSet` for the fits
(column weights = multiplicities, so sizes and popularity equal the
subscriber-level values exactly) and its expansion, byte-identical to
``build_cell_set`` on the unaggregated subscriptions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import EventSpace, Rectangle
from ..grid.cells import CellSet, cell_set_from_membership
from .subsume import AggregateSet, aggregate_subscriptions

__all__ = [
    "AggregateView",
    "build_aggregate_cells",
    "expand_cell_set",
]


class AggregateView:
    """Interest queries over aggregates, expanded to subscriber ids."""

    def __init__(
        self,
        subscriptions,
        aggregates: Optional[AggregateSet] = None,
    ) -> None:
        self.subscriptions = subscriptions
        self.aggregates = (
            aggregates
            if aggregates is not None
            else aggregate_subscriptions(subscriptions)
        )

    # ------------------------------------------------------------------
    def match_aggregates(self, point: Sequence[float]) -> np.ndarray:
        """Indices of aggregates whose rectangle contains ``point``.

        Hierarchical: roots are tested directly, children only under
        matched parents — exact because containment implies every point
        of the child lies in the parent.
        """
        agg = self.aggregates
        x = np.asarray(point, dtype=np.float64)
        hits: List[int] = []
        children = agg.children()
        stack = [int(a) for a in agg.roots()]
        while stack:
            a = stack.pop()
            if np.all(agg.los[a] < x) and np.all(x <= agg.his[a]):
                hits.append(a)
                stack.extend(int(c) for c in children[a])
        hits.sort()
        return np.asarray(hits, dtype=np.int64)

    def expand(self, agg_ids: Sequence[int]) -> np.ndarray:
        """Sorted unique subscriber ids behind a set of aggregates."""
        owner_lists = [self.aggregates.owners[int(a)] for a in agg_ids]
        if not owner_lists:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(owner_lists))

    def interested_subscribers(self, point: Sequence[float]) -> np.ndarray:
        """Same contract (and result) as
        ``SubscriptionSet.interested_subscribers``."""
        return self.expand(self.match_aggregates(point))

    def batch_interested_subscribers(
        self, points: Sequence[Sequence[float]]
    ) -> List[np.ndarray]:
        """Same contract (and results) as
        ``SubscriptionSet.batch_interested_subscribers`` — one broadcast
        over ``n_agg`` bounds instead of ``m`` rows, then per-event
        expansion through the member lists.
        """
        agg = self.aggregates
        pts = np.asarray(points, dtype=np.float64)
        n_dims = agg.los.shape[1] if agg.n_aggregates else len(
            self.subscriptions.space.dimensions
        )
        if pts.size == 0:
            pts = pts.reshape(0, n_dims)
        if pts.ndim != 2 or pts.shape[1] != n_dims:
            raise ValueError("points must be an (E, n_dims) array-like")
        if agg.n_aggregates == 0:
            return [np.empty(0, dtype=np.int64) for _ in range(len(pts))]
        x = pts[:, None, :]
        matched = np.all(
            (agg.los[None, :, :] < x) & (x <= agg.his[None, :, :]), axis=2
        )
        return [
            self.expand(np.nonzero(row)[0]) for row in matched
        ]


# ----------------------------------------------------------------------
def expand_cell_set(agg_cells: CellSet, sub_map: np.ndarray) -> CellSet:
    """Subscriber-level :class:`CellSet` from an aggregate-level one.

    A subscriber's rasterised column equals its aggregate's, so the
    expansion is one fancy index over columns; probs, cell ids and
    hypercell mapping are shared (they are column-width independent).
    """
    if np.any(sub_map < 0):
        raise ValueError("sub_map has departed subscribers (-1 entries)")
    # the column gather comes out Fortran-ordered; the packed-bitset
    # mirror (and the row-major kernels) need C-contiguous rows
    return CellSet(
        space=agg_cells.space,
        membership=np.ascontiguousarray(agg_cells.membership[:, sub_map]),
        probs=agg_cells.probs,
        cell_ids=agg_cells.cell_ids,
        hypercell_of_cell=agg_cells.hypercell_of_cell,
    )


def _rasterise_aggregates(
    space: EventSpace, aggregates: AggregateSet
) -> np.ndarray:
    """``(n_cells, n_agg)`` membership matrix of the aggregate
    rectangles — the same block-slice rasterisation as
    ``build_membership_matrix``, one column per aggregate.
    """
    membership = np.zeros(
        (space.n_cells, aggregates.n_aggregates), dtype=bool
    )
    grid = membership.reshape(*space.shape, aggregates.n_aggregates)
    for a in range(aggregates.n_aggregates):
        rect = Rectangle.from_bounds(aggregates.los[a], aggregates.his[a])
        try:
            slices = space.cell_slices(rect)
        except ValueError:
            continue  # rectangle misses the grid: matches nothing
        grid[slices + (a,)] = True
    return membership


def build_aggregate_cells(
    space: EventSpace,
    subscriptions,
    aggregates: AggregateSet,
    cell_pmf: np.ndarray,
    max_cells: Optional[int] = None,
) -> Tuple[CellSet, CellSet]:
    """Grid preprocessing on aggregate columns, plus its expansion.

    Returns ``(agg_cells, expanded_cells)``: the first carries column
    weights (multiplicities) so the fits see exact subscriber counts;
    the second is byte-identical to
    ``build_cell_set(space, subscriptions, cell_pmf, max_cells)``.
    """
    cell_pmf = np.asarray(cell_pmf, dtype=np.float64)
    if cell_pmf.shape != (space.n_cells,):
        raise ValueError(
            f"cell_pmf must have one entry per grid cell "
            f"({space.n_cells}), got {cell_pmf.shape}"
        )
    sub_map = aggregates.subscriber_map(subscriptions.n_subscribers)
    if np.any(sub_map < 0):
        raise ValueError(
            "aggregated cell build requires every subscriber to be live; "
            "compact the subscription set first"
        )
    membership = _rasterise_aggregates(space, aggregates)
    # nothing collapsed: the aggregate columns equal the subscriber
    # columns, so drop the all-ones weights — unweighted fits keep the
    # packed-bitset kernels
    weights = aggregates.multiplicity
    if aggregates.n_aggregates == aggregates.n_subscriptions:
        weights = None
    agg_cells = cell_set_from_membership(
        space,
        membership,
        cell_pmf,
        max_cells=max_cells,
        weights=weights,
    )
    return agg_cells, expand_cell_set(agg_cells, sub_map)
