"""Incremental aggregate maintenance for the online broker.

Full re-aggregation scans all ``m`` live rectangles; under churn that
would put an O(m) pass on every join/leave.  :class:`OnlineAggregator`
instead keys aggregates by their rectangle bounds: a subscribe is one
dict lookup — merging into the existing aggregate or creating a new
one — and an unsubscribe splits its handle back out, dissolving the
aggregate when it empties.  The broker keeps one instance in lockstep
with its handle table and asks for a :class:`AggregateSnapshot` only at
rebuild time, ordered by smallest member handle so the rebuilt
hypercells come out byte-identical to the unaggregated path (see
docs/aggregation.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..geometry import Rectangle
from ..obs import get_registry

__all__ = ["AggregateSnapshot", "OnlineAggregator"]

_BoundsKey = Tuple[float, ...]


def _bounds_key(rectangle: Rectangle) -> _BoundsKey:
    lo_t, hi_t = rectangle.bounds()
    return tuple(lo_t) + tuple(hi_t)


@dataclass(frozen=True)
class AggregateSnapshot:
    """Aggregate structure over a sorted handle list at rebuild time.

    ``agg_of`` maps each position in the handle list (= the broker's
    internal subscriber id) to its aggregate; ``reps`` holds one
    representative handle per aggregate (its smallest member, in
    aggregate order); ``multiplicity`` counts members.
    """

    agg_of: np.ndarray
    reps: Tuple[int, ...]
    multiplicity: np.ndarray

    @property
    def n_aggregates(self) -> int:
        return len(self.reps)

    @property
    def n_subscriptions(self) -> int:
        return int(len(self.agg_of))

    @property
    def aggregation_ratio(self) -> float:
        if self.n_aggregates == 0:
            return 1.0
        return self.n_subscriptions / self.n_aggregates


class OnlineAggregator:
    """Bounds-keyed aggregate membership maintained under churn."""

    def __init__(self) -> None:
        self._key_of: Dict[int, _BoundsKey] = {}
        self._handles_of: Dict[_BoundsKey, set] = {}
        registry = get_registry()
        self._merges = registry.counter(
            "aggregation_merges_total",
            "subscribes absorbed into an existing aggregate",
        )
        self._splits = registry.counter(
            "aggregation_splits_total",
            "unsubscribes split out of a surviving aggregate",
        )

    # ------------------------------------------------------------------
    @property
    def n_aggregates(self) -> int:
        return len(self._handles_of)

    @property
    def n_subscriptions(self) -> int:
        return len(self._key_of)

    @property
    def aggregation_ratio(self) -> float:
        if not self._handles_of:
            return 1.0
        return len(self._key_of) / len(self._handles_of)

    # ------------------------------------------------------------------
    def add(self, handle: int, rectangle: Rectangle) -> bool:
        """Track one subscription; True when it opened a new aggregate."""
        if handle in self._key_of:
            raise KeyError(f"handle {handle} already aggregated")
        key = _bounds_key(rectangle)
        self._key_of[handle] = key
        group = self._handles_of.get(key)
        if group is None:
            self._handles_of[key] = {handle}
            return True
        group.add(handle)
        self._merges.inc()
        return False

    def remove(self, handle: int) -> bool:
        """Untrack one subscription; True when its aggregate dissolved."""
        key = self._key_of.pop(handle)
        group = self._handles_of[key]
        group.discard(handle)
        if not group:
            del self._handles_of[key]
            return True
        self._splits.inc()
        return False

    # ------------------------------------------------------------------
    def snapshot(self, handles: Sequence[int]) -> AggregateSnapshot:
        """Aggregate structure over ``handles`` (the broker's sorted
        live-handle list), aggregates ordered by first appearance —
        i.e. by smallest member internal id."""
        agg_index: Dict[_BoundsKey, int] = {}
        agg_of = np.empty(len(handles), dtype=np.int64)
        reps: List[int] = []
        counts: List[int] = []
        for i, handle in enumerate(handles):
            key = self._key_of[handle]
            a = agg_index.get(key)
            if a is None:
                a = len(reps)
                agg_index[key] = a
                reps.append(int(handle))
                counts.append(0)
            agg_of[i] = a
            counts[a] += 1
        return AggregateSnapshot(
            agg_of=agg_of,
            reps=tuple(reps),
            multiplicity=np.asarray(counts, dtype=np.int64),
        )
