"""Grid-based clustering framework preprocessing (section 4.1): membership
matrices, hyper-cell merging and popularity-based cell selection."""

from .cells import (
    CellSet,
    build_cell_set,
    build_membership_matrix,
    cell_set_from_membership,
)

__all__ = [
    "CellSet",
    "build_cell_set",
    "build_membership_matrix",
    "cell_set_from_membership",
]
