"""Grid cells, membership vectors and hyper-cells (section 4.1).

The grid-based clustering framework overlays a regular grid on the event
space and associates with every cell ``a`` its *subscriber membership
vector* ``s(a)``: bit ``i`` is set when some subscription rectangle of
subscriber ``i`` overlaps the cell.  Cells with identical membership
vectors can be combined at zero expected waste; the implementation merges
them into *hyper-cells*.  Hyper-cells are then ranked by the popularity
rating ``r(a) = p_p(a) * sum_i s(a)_i`` and only the most popular ones are
fed to the clustering algorithm (the rest fall back to unicast).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import EventSpace
from ..kernels import PackedBits, pack_rows
from ..obs import get_tracer
from ..workload import SubscriptionSet

__all__ = [
    "CellSet",
    "build_membership_matrix",
    "build_cell_set",
    "cell_set_from_membership",
]


def build_membership_matrix(
    space: EventSpace, subscriptions: SubscriptionSet
) -> np.ndarray:
    """Dense membership matrix over all grid cells.

    Returns a boolean array of shape ``(space.n_cells, n_subscribers)``
    where entry ``(c, i)`` is ``s(c)_i`` from equation (1) of the paper.
    Because every subscription rectangle overlaps a *contiguous block* of
    cells in each dimension, the matrix is filled with one numpy block
    assignment per subscription.

    Subscription sources that are not rectangle-based (the predicate
    sets of :mod:`repro.workload.predicates`) provide their own
    ``membership_matrix`` rasterisation, which takes precedence.
    """
    own = getattr(subscriptions, "membership_matrix", None)
    if own is not None:
        return own(space)
    n_subs = subscriptions.n_subscribers
    shaped = np.zeros(space.shape + (n_subs,), dtype=bool)
    for sub in subscriptions.subscriptions:
        try:
            slices = space.cell_slices(sub.rectangle)
        except ValueError:
            continue  # rectangle entirely outside the grid: matches nothing
        shaped[slices + (sub.subscriber,)] = True
    return shaped.reshape(space.n_cells, n_subs)


@dataclass
class CellSet:
    """Hyper-cells selected for clustering.

    Attributes
    ----------
    space:
        The event space the grid lives in.
    membership:
        ``(m, n_subscribers)`` boolean matrix; row ``h`` is the feature
        vector of hyper-cell ``h``.
    probs:
        ``(m,)`` publication probability ``p_p`` of each hyper-cell (the
        sum of its member cells' probabilities).
    cell_ids:
        Flat grid-cell indices belonging to each hyper-cell.
    hypercell_of_cell:
        ``(space.n_cells,)`` int32 array mapping a flat grid cell to its
        hyper-cell, or ``-1`` for cells that were dropped (empty
        membership or below the popularity cut).
    weights:
        Optional ``(n_subscribers,)`` int64 column weights.  The
        aggregation layer fits on columns that stand for several
        identical subscriptions each; with weights set, ``sizes`` (and
        hence ``popularity``) count the subscriptions behind each
        column, so aggregate-level fits see exactly the subscriber-level
        values.  ``None`` (the default) means every column counts once.
    """

    space: EventSpace
    membership: np.ndarray
    probs: np.ndarray
    cell_ids: List[np.ndarray]
    hypercell_of_cell: np.ndarray
    weights: Optional[np.ndarray] = None
    #: lazily built packed-bitset mirror of ``membership`` (see
    #: :mod:`repro.kernels`); built once and shared by every fit
    _packed: Optional[PackedBits] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.membership.ndim != 2:
            raise ValueError("membership must be a 2-d matrix")
        if len(self.probs) != len(self.membership):
            raise ValueError("probs / membership length mismatch")
        if len(self.cell_ids) != len(self.membership):
            raise ValueError("cell_ids / membership length mismatch")
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=np.int64)
            if self.weights.shape != (self.membership.shape[1],):
                raise ValueError("weights must have one entry per column")

    def __len__(self) -> int:
        return len(self.membership)

    @property
    def n_subscribers(self) -> int:
        return self.membership.shape[1]

    @property
    def packed(self) -> PackedBits:
        """Packed uint64 view of ``membership``, built once per cell set.

        The clustering hot paths (pairwise merging, waste evaluation)
        run on this instead of the boolean matrix; subsets propagate it
        by row selection so repeated fits never re-pack.
        """
        if self._packed is None:
            self._packed = pack_rows(self.membership)
        return self._packed

    @property
    def sizes(self) -> np.ndarray:
        """Number of interested subscribers per hyper-cell (weighted
        columns count their multiplicity)."""
        if self.weights is not None:
            return self.membership.astype(np.int64) @ self.weights
        return self.membership.sum(axis=1)

    @property
    def popularity(self) -> np.ndarray:
        """Popularity rating ``r(a) = p_p(a) * |s(a)|`` per hyper-cell."""
        return self.probs * self.sizes

    def subscribers_of(self, hypercell: int) -> np.ndarray:
        """Subscriber ids interested in a hyper-cell."""
        return np.nonzero(self.membership[hypercell])[0]

    def top_by_popularity(self, n: int) -> "CellSet":
        """A new :class:`CellSet` keeping only the ``n`` most popular."""
        if n >= len(self):
            return self
        order = np.argsort(-self.popularity, kind="stable")[:n]
        return self._subset(order)

    def _subset(self, order: np.ndarray) -> "CellSet":
        mapping = np.full(self.space.n_cells, -1, dtype=np.int32)
        cell_ids = []
        for new_idx, old_idx in enumerate(order):
            ids = self.cell_ids[old_idx]
            cell_ids.append(ids)
            mapping[ids] = new_idx
        subset = CellSet(
            space=self.space,
            membership=self.membership[order],
            probs=self.probs[order],
            cell_ids=cell_ids,
            hypercell_of_cell=mapping,
            weights=self.weights,
        )
        if self._packed is not None:
            subset._packed = self._packed.take(order)
        return subset


def build_cell_set(
    space: EventSpace,
    subscriptions: SubscriptionSet,
    cell_pmf: np.ndarray,
    max_cells: Optional[int] = None,
) -> CellSet:
    """Run the preprocessing stage of the grid-based framework.

    1. Build the membership matrix over the full grid.
    2. Drop cells with no interested subscribers (nothing to deliver).
    3. Merge cells with identical membership vectors into hyper-cells,
       accumulating their publication probabilities.
    4. Keep at most ``max_cells`` hyper-cells, the most popular by
       ``r(a) = p_p(a)·|s(a)|``.
    """
    cell_pmf = np.asarray(cell_pmf, dtype=np.float64)
    if cell_pmf.shape != (space.n_cells,):
        raise ValueError(
            f"cell_pmf must have one entry per grid cell "
            f"({space.n_cells}), got {cell_pmf.shape}"
        )
    with get_tracer().span(
        "grid.build_cell_set",
        n_grid_cells=space.n_cells,
        max_cells=max_cells,
    ) as span:
        cells = _build_cell_set(space, subscriptions, cell_pmf, max_cells)
        span.set("n_hypercells", len(cells))
    return cells


def _build_cell_set(
    space: EventSpace,
    subscriptions: SubscriptionSet,
    cell_pmf: np.ndarray,
    max_cells: Optional[int],
) -> CellSet:
    membership = build_membership_matrix(space, subscriptions)
    return cell_set_from_membership(space, membership, cell_pmf, max_cells)


def cell_set_from_membership(
    space: EventSpace,
    membership: np.ndarray,
    cell_pmf: np.ndarray,
    max_cells: Optional[int] = None,
    weights: Optional[np.ndarray] = None,
) -> CellSet:
    """Steps 2-4 of :func:`build_cell_set` on a prebuilt membership matrix.

    This is the delta-update entry point of the online runtime: a caller
    that maintains the dense ``(n_cells, n_subscribers)`` matrix
    incrementally across subscription churn (one column flip per
    join/leave) re-derives hyper-cells from it directly, skipping the
    per-subscription rasterisation pass of
    :func:`build_membership_matrix`.
    """
    if membership.shape[0] != space.n_cells:
        raise ValueError("membership must have one row per grid cell")
    nonempty = np.nonzero(membership.any(axis=1))[0]
    if len(nonempty) == 0:
        raise ValueError("no grid cell is covered by any subscription")

    # merge identical membership rows into hyper-cells: pack each row to
    # bytes and group equal rows with np.unique
    packed = np.packbits(membership[nonempty], axis=1)
    _, first_idx, inverse = np.unique(
        packed, axis=0, return_index=True, return_inverse=True
    )
    inverse = inverse.reshape(-1)
    n_hyper = len(first_idx)

    probs = np.zeros(n_hyper, dtype=np.float64)
    np.add.at(probs, inverse, cell_pmf[nonempty])

    cell_ids: List[np.ndarray] = [None] * n_hyper  # type: ignore[list-item]
    order = np.argsort(inverse, kind="stable")
    sorted_inverse = inverse[order]
    sorted_cells = nonempty[order]
    boundaries = np.flatnonzero(np.diff(sorted_inverse)) + 1
    for h, ids in enumerate(np.split(sorted_cells, boundaries)):
        cell_ids[h] = ids

    hyper_membership = membership[nonempty[first_idx]]
    mapping = np.full(space.n_cells, -1, dtype=np.int32)
    for h, ids in enumerate(cell_ids):
        mapping[ids] = h

    cells = CellSet(
        space=space,
        membership=hyper_membership,
        probs=probs,
        cell_ids=cell_ids,
        hypercell_of_cell=mapping,
        weights=weights,
    )
    if max_cells is not None:
        cells = cells.top_by_popularity(max_cells)
    return cells
