"""Scribe-like rendezvous trees over the Pastry overlay.

Each multicast group hashes to a rendezvous key; the key's owner on the
overlay ring is the group's **root**.  **Root affinity** relocates the
hashed key's leading digits into the id domain holding the most members,
so — ids being proximity-assigned — the rendezvous lands underlay-near
the group instead of on a uniformly random node.

Members join by **proximity anycast**: the join request is forwarded hop
by hop along the underlay shortest path towards the nearest node already
in the tree, and every traversed overlay node becomes a forwarder
(reverse-path grafting).  Because join paths share underlay links with
earlier branches, the finished tree approaches the Steiner quality of a
dense-mode shortest-path tree rather than paying each member a full
end-to-end unicast.  Delivering one message costs the publisher's
overlay route to the root plus one underlay link per tree edge.

**Subgrouping** (Shafique's subscription subgrouping) splits a group's
members by the leading digits of their overlay ids.  Each non-empty
subgroup elects a leader — the member closest to the group key relocated
into the subgroup's id domain.  Leaders join first, in order of their
underlay distance from the root, forming the tree's backbone; the
remaining members then graft onto it in outward proximity waves.

**Route healing**: trees are cached per member set and *repaired*, not
rebuilt, when the topology moves.  Members whose parent chain survived
keep their branches; members orphaned by a failed forwarder or a
changed leader re-join (``overlay_tree_repairs_total{kind="reattach"}``)
and dead branches are pruned (``kind="prune"``).  Only a failed root
forces a full rebuild (``kind="rebuild"``).  This is the counterpart the
chaos comparison weighs against dense mode's shortest-path-tree
recompute (see :mod:`repro.faults.healing`).
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..network.routing import RoutingTables
from ..obs import get_flight_recorder, get_registry
from .overlay import OverlayConfig, OverlayUniverse, PastryOverlay

__all__ = ["RendezvousDelivery", "RendezvousTree", "overlay_for"]

#: cached dissemination trees per delivery instance (LRU)
_MAX_TREES = 1024


@dataclass
class RendezvousTree:
    """One group's dissemination tree (parent pointers towards the root)."""

    key: int
    root: int
    #: child -> parent forwarding hops; every edge is one underlay link
    parent: Dict[int, int] = field(default_factory=dict)
    #: member -> the node it joined towards (leader or root), for repair
    targets: Dict[int, int] = field(default_factory=dict)
    #: identity of the universe the tree was built/repaired in
    universe_key: Tuple[int, ...] = ()
    n_subgroups: int = 0

    def cost(self, routing: RoutingTables) -> float:
        """Total underlay cost of the tree's edges (deterministic order)."""
        return sum(
            routing.distance(child, parent)
            for child, parent in sorted(self.parent.items())
        )

    def nodes(self) -> set:
        """Every node currently on the tree (root, members, forwarders)."""
        joined = {self.root}
        joined.update(self.parent)
        joined.update(self.parent.values())
        return joined

    def intact(self, member: int, universe: OverlayUniverse) -> bool:
        """True when the member's parent chain still reaches the root
        through live nodes."""
        node = member
        seen = set()
        while node != self.root:
            if node not in universe or node in seen:
                return False
            seen.add(node)
            parent = self.parent.get(node)
            if parent is None:
                return False
            node = parent
        return node in universe


class RendezvousDelivery:
    """Prices group delivery over rendezvous trees, healing across faults."""

    def __init__(
        self, routing: RoutingTables, config: Optional[OverlayConfig] = None
    ) -> None:
        self.routing = routing
        self.overlay = PastryOverlay(routing, config)
        self.config = self.overlay.config
        self._trees: "OrderedDict[bytes, RendezvousTree]" = OrderedDict()

    # ------------------------------------------------------------------
    def group_cost(self, publisher: int, nodes: np.ndarray) -> float:
        """Delivery cost: publisher's route to the root + the tree."""
        members = np.unique(np.asarray(nodes, dtype=np.int64))
        if members.size == 0:
            return 0.0
        universe = self.overlay.universe_for(publisher)
        for member in members:
            if int(member) not in universe:
                raise ValueError(
                    f"node {int(member)} unreachable from publisher "
                    f"{publisher}"
                )
        tree = self.tree(universe, members)
        return universe.route_cost(publisher, tree.key) + tree.cost(
            self.routing
        )

    def tree(
        self, universe: OverlayUniverse, members: np.ndarray
    ) -> RendezvousTree:
        """The group's dissemination tree, built or repaired on demand."""
        cache_key = members.tobytes()
        tree = self._trees.get(cache_key)
        if tree is not None:
            self._trees.move_to_end(cache_key)
            if tree.universe_key == universe.key:
                return tree
            tree = self._repair(tree, universe, members)
            self._trees[cache_key] = tree
            return tree
        key = self._rendezvous_key(members)
        tree = self._build(universe, key, members)
        self._trees[cache_key] = tree
        while len(self._trees) > _MAX_TREES:
            self._trees.popitem(last=False)
        return tree

    # ------------------------------------------------------------------
    def _rendezvous_key(self, members: np.ndarray) -> int:
        """The group's hashed key, relocated for root affinity.

        The hash's leading digits are replaced with the id-domain prefix
        holding the most members (ties to the lowest prefix), so the
        key's owner — the tree's root — is underlay-near the group under
        the overlay's proximity-preserving id assignment.
        """
        overlay = self.overlay
        key = overlay.group_key(members)
        counts: Dict[int, int] = {}
        for member in members:
            prefix = overlay.subgroup_prefix(int(overlay.ids[int(member)]))
            counts[prefix] = counts.get(prefix, 0) + 1
        majority = min(counts, key=lambda p: (-counts[p], p))
        return overlay.subgroup_key(key, majority)

    def _join_plan(
        self, universe: OverlayUniverse, key: int, members: np.ndarray
    ) -> List[Tuple[int, int]]:
        """Deterministic join order: ``(member, target_key)`` pairs.

        With subgrouping, each subgroup elects a leader (the member
        ring-closest to the group key relocated into the subgroup's
        domain); leaders join first, then the remaining members, each
        wave ordered by underlay distance from the root so the tree
        grows outward from the rendezvous.  Without subgrouping every
        member joins towards the global key in the same proximity
        order.
        """
        overlay = self.overlay
        root = universe.owner(key)
        dist, _ = self.routing.shortest_paths(root).arrays()

        def waves(ordered: List[int]) -> List[int]:
            return sorted(ordered, key=lambda m: (float(dist[m]), m))

        self._last_subgroups = 1
        if not self.config.subgrouping:
            return [
                (m, key) for m in waves([int(m) for m in members])
            ]
        domains: Dict[int, List[int]] = {}
        for member in sorted(int(m) for m in members):
            prefix = overlay.subgroup_prefix(int(overlay.ids[member]))
            domains.setdefault(prefix, []).append(member)
        leaders: Dict[int, int] = {}
        for prefix in sorted(domains):
            subkey = overlay.subgroup_key(key, prefix)
            leaders[prefix] = min(
                domains[prefix],
                key=lambda m: (
                    overlay.ring_distance(int(overlay.ids[m]), subkey),
                    m,
                ),
            )
        plan: List[Tuple[int, int]] = [
            (leader, key) for leader in waves(sorted(leaders.values()))
        ]
        followers = [
            (member, int(overlay.ids[leaders[prefix]]))
            for prefix in sorted(domains)
            for member in domains[prefix]
            if member != leaders[prefix]
        ]
        targets = dict(followers)
        plan.extend(
            (member, targets[member])
            for member in waves([m for m, _ in followers])
        )
        self._last_subgroups = len(domains)
        return plan

    def _graft(
        self,
        tree: RendezvousTree,
        universe: OverlayUniverse,
        member: int,
        target_key: int,
    ) -> None:
        """Proximity anycast join: forward the join request along the
        underlay shortest path to the nearest node already on the tree,
        grafting every hop as a forwarder (reverse-path grafting)."""
        tree.targets[member] = target_key
        if member == tree.root or member in tree.parent:
            return
        joined = tree.nodes()
        paths = self.routing.shortest_paths(member)
        dist, _ = paths.arrays()
        nearest = min(joined, key=lambda n: (float(dist[n]), n))
        current = member
        for hop in paths.path_to(nearest)[1:]:
            tree.parent[current] = hop
            if hop == tree.root or hop in tree.parent:
                return
            current = hop

    def _build(
        self, universe: OverlayUniverse, key: int, members: np.ndarray
    ) -> RendezvousTree:
        tree = RendezvousTree(
            key=key,
            root=universe.owner(key),
            universe_key=universe.key,
        )
        for member, target_key in self._join_plan(universe, key, members):
            self._graft(tree, universe, member, target_key)
        tree.n_subgroups = self._last_subgroups
        registry = get_registry()
        registry.counter(
            "overlay_tree_builds_total", "rendezvous trees built from scratch"
        ).inc()
        registry.gauge(
            "overlay_subgroups", "subgroups of the most recently built tree"
        ).set(tree.n_subgroups)
        recorder = get_flight_recorder()
        if recorder.active:
            recorder.stage(
                "overlay_build",
                root=tree.root,
                members=int(members.size),
                subgroups=tree.n_subgroups,
            )
        return tree

    def _repair(
        self,
        tree: RendezvousTree,
        universe: OverlayUniverse,
        members: np.ndarray,
    ) -> RendezvousTree:
        """Heal a cached tree into the new universe.

        Branches whose parent chains survived are kept verbatim; broken
        members re-join; forwarders no branch uses any more are pruned.
        A dead (or re-owned) root means the rendezvous moved — the tree
        is rebuilt from scratch and counted as such.
        """
        repairs = get_registry().counter(
            "overlay_tree_repairs_total",
            "healing operations on cached rendezvous trees",
        )
        root = universe.owner(tree.key)
        if root != tree.root:
            repairs.inc(kind="rebuild")
            return self._build(universe, tree.key, members)
        healed = RendezvousTree(
            key=tree.key, root=tree.root, universe_key=universe.key
        )
        plan = self._join_plan(universe, tree.key, members)
        healed.n_subgroups = self._last_subgroups
        reattached = 0
        for member, target_key in plan:
            same_target = tree.targets.get(member) == target_key
            if same_target and tree.intact(member, universe):
                node = member
                while node != tree.root and node not in healed.parent:
                    healed.parent[node] = tree.parent[node]
                    node = tree.parent[node]
                healed.targets[member] = target_key
            else:
                self._graft(healed, universe, member, target_key)
                reattached += 1
        pruned = len(
            set(tree.parent) - set(healed.parent) - {healed.root}
        )
        if reattached:
            repairs.inc(reattached, kind="reattach")
        if pruned:
            repairs.inc(pruned, kind="prune")
        if not reattached and not pruned:
            # every chain survived: the heal was a pure verification pass
            repairs.inc(kind="intact")
        recorder = get_flight_recorder()
        if recorder.active:
            recorder.stage(
                "overlay_repair",
                root=healed.root,
                reattached=reattached,
                pruned=pruned,
            )
        return healed


#: one shared delivery layer per routing table, so every dispatcher and
#: broker rebuild over the same topology reuses (and heals) one set of
#: trees instead of rebuilding overlay state per instance
_DELIVERIES: "weakref.WeakKeyDictionary[RoutingTables, RendezvousDelivery]" = (
    weakref.WeakKeyDictionary()
)


def overlay_for(
    routing: RoutingTables, config: Optional[OverlayConfig] = None
) -> RendezvousDelivery:
    """The per-routing rendezvous delivery singleton (created on first
    use; an explicit differing ``config`` replaces the cached one)."""
    delivery = _DELIVERIES.get(routing)
    if delivery is None or (
        config is not None and delivery.config != config
    ):
        delivery = RendezvousDelivery(routing, config)
        _DELIVERIES[routing] = delivery
    return delivery
