"""A deterministic Pastry-like structured overlay over the network graph.

The overlay assigns every network node a fixed-width identifier on a
ring of ``2^id_bits`` positions and routes towards a key with the two
classic Pastry structures:

* **prefix routing tables** — at a node whose id shares the first ``l``
  digits (``digit_bits`` bits each) with the key, the table row ``l``
  holds, per next digit value, a node extending the shared prefix by
  one digit.  Among the eligible nodes the *underlay-closest* one is
  chosen (Pastry's proximity neighbour selection), ties broken by the
  lowest node id, so tables are a pure function of the topology.
* **leaf sets** — the ``leaf_span`` nearest live ring neighbours on
  each side.  Greedy routing over the leaf set alone already converges
  to the key's owner, so prefix hops only shorten the route.

Id assignment is seeded and deterministic.  The default ``proximity``
mode runs a nearest-neighbour tour over the shortest-path distance
matrix and spreads the tour evenly around the ring, so numerically
close ids belong to underlay-close nodes — the property subscription
subgrouping exploits (prefix subgroups become underlay-local).  The
``hash`` mode is the textbook uniform assignment (blake2b of the node
id, collisions probed linearly).

Fault handling: routing always happens inside a *universe* — the live
nodes reachable from the route's source in the current topology.  Every
node of a universe can reach every other (an undirected component), so
greedy numeric routing never needs per-hop reachability checks, and a
partitioned network simply yields one universe per component.  When the
topology version moves, the overlay diffs its live membership and
counts the leaf-set patches ring neighbours perform
(``overlay_leafset_repairs_total``) — the DHT-side half of route
healing (tree reattachment lives in :mod:`repro.dht.scribe`).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..network.routing import RoutingTables
from ..obs import get_registry

__all__ = ["OverlayConfig", "PastryOverlay", "OverlayUniverse"]


def _digest(*parts: object) -> int:
    """Deterministic 64-bit digest of the joined string parts."""
    text = ":".join(str(part) for part in parts)
    return int.from_bytes(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big"
    )


@dataclass(frozen=True)
class OverlayConfig:
    """Shape of the overlay (all of it feeds the deterministic build)."""

    #: ring size is ``2^id_bits``; must hold every node
    id_bits: int = 16
    #: bits per routing digit (Pastry's ``b``; 4 = hexadecimal digits)
    digit_bits: int = 4
    #: live ring neighbours kept on each side of a node's leaf set
    leaf_span: int = 4
    #: seeds id assignment and group-key hashing
    seed: int = 0
    #: ``proximity`` (nearest-neighbour tour, locality-preserving ids)
    #: or ``hash`` (uniform blake2b ids)
    assignment: str = "proximity"
    #: split each group's members into overlay-local subgroups led by a
    #: per-subgroup rendezvous (see :mod:`repro.dht.scribe`)
    subgrouping: bool = True
    #: id digits that define a subgroup domain (1 digit of 4 bits =
    #: up to 16 subgroups)
    subgroup_digits: int = 1

    def __post_init__(self) -> None:
        if self.digit_bits < 1:
            raise ValueError("digit_bits must be positive")
        if self.id_bits < self.digit_bits or self.id_bits % self.digit_bits:
            raise ValueError("id_bits must be a positive multiple of digit_bits")
        if self.leaf_span < 1:
            raise ValueError("leaf_span must be positive")
        if self.assignment not in ("proximity", "hash"):
            raise ValueError("assignment must be 'proximity' or 'hash'")
        if not 1 <= self.subgroup_digits <= self.id_bits // self.digit_bits:
            raise ValueError("subgroup_digits out of range for id_bits")

    @property
    def ring_size(self) -> int:
        return 1 << self.id_bits

    @property
    def n_digits(self) -> int:
        return self.id_bits // self.digit_bits


class OverlayUniverse:
    """One routable component: the live nodes mutually reachable there.

    Leaf sets, routing-table entries and routes are resolved lazily and
    cached for the universe's lifetime (one topology version).  All
    choices are deterministic: numeric ties break towards the lower
    node id, proximity ties likewise.
    """

    def __init__(
        self,
        overlay: "PastryOverlay",
        nodes: Tuple[int, ...],
    ) -> None:
        self._overlay = overlay
        self.nodes = nodes
        self.key = nodes  # hashable identity of the member set
        self._node_set = frozenset(nodes)
        ids = overlay.ids
        # ring order: positions sorted by id (ids are unique)
        order = sorted(nodes, key=lambda n: ids[n])
        self._ring_nodes = order
        self._ring_ids = [int(ids[n]) for n in order]
        self._ring_pos = {node: pos for pos, node in enumerate(order)}
        self._leafsets: Dict[int, Tuple[int, ...]] = {}
        self._table: Dict[Tuple[int, int, int], Optional[int]] = {}
        self._routes: Dict[Tuple[int, int], Tuple[int, Tuple[int, ...]]] = {}

    def __contains__(self, node: int) -> bool:
        return node in self._node_set

    def __len__(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    def _rank(self, node: int, key: int) -> Tuple[int, int]:
        """Total order used for ownership: circular distance, then id."""
        return self._overlay.ring_distance(self._overlay.ids[node], key), node

    def owner(self, key: int) -> int:
        """The live node whose id is numerically closest to ``key``."""
        ids = self._ring_ids
        lo = int(np.searchsorted(ids, key))
        candidates = {
            self._ring_nodes[(lo - 1) % len(ids)],
            self._ring_nodes[lo % len(ids)],
        }
        return min(candidates, key=lambda n: self._rank(n, key))

    def leafset(self, node: int) -> Tuple[int, ...]:
        """The ``leaf_span`` nearest ring neighbours on each side."""
        cached = self._leafsets.get(node)
        if cached is None:
            pos = self._ring_pos[node]
            size = len(self._ring_nodes)
            span = min(self._overlay.config.leaf_span, (size - 1) // 2 + 1)
            neighbours = []
            for offset in range(1, span + 1):
                neighbours.append(self._ring_nodes[(pos - offset) % size])
                neighbours.append(self._ring_nodes[(pos + offset) % size])
            cached = tuple(dict.fromkeys(n for n in neighbours if n != node))
            self._leafsets[node] = cached
        return cached

    def table_entry(self, node: int, row: int, digit: int) -> Optional[int]:
        """Routing-table slot: shares ``row`` digits with ``node``, next
        digit equals ``digit``; the underlay-closest eligible node wins."""
        slot = (node, row, digit)
        if slot in self._table:
            return self._table[slot]
        overlay = self._overlay
        node_id = int(overlay.ids[node])
        best: Optional[int] = None
        best_rank: Optional[Tuple[float, int]] = None
        for other in self._ring_nodes:
            if other == node:
                continue
            other_id = int(overlay.ids[other])
            if overlay.common_digits(node_id, other_id) != row:
                continue
            if overlay.digit(other_id, row) != digit:
                continue
            rank = (overlay.routing.distance(node, other), other)
            if best_rank is None or rank < best_rank:
                best, best_rank = other, rank
        self._table[slot] = best
        return best

    # ------------------------------------------------------------------
    def route(self, source: int, key: int) -> Tuple[int, Tuple[int, ...]]:
        """Greedy prefix route from ``source`` towards ``key``.

        Returns ``(final_node, hops)`` where ``hops`` is the node
        sequence *after* the source.  The final node is the universe's
        :meth:`owner` of the key; each hop strictly improves the
        ``(ring distance, node id)`` rank, so the walk terminates.
        """
        cached = self._routes.get((source, key))
        if cached is not None:
            return cached
        overlay = self._overlay
        hops: List[int] = []
        current = source
        while True:
            current_rank = self._rank(current, key)
            candidates = list(self.leafset(current))
            row = overlay.common_digits(int(overlay.ids[current]), key)
            if row < overlay.config.n_digits:
                entry = self.table_entry(
                    current, row, overlay.digit(key, row)
                )
                if entry is not None:
                    candidates.append(entry)
            if not candidates:
                break
            best = min(candidates, key=lambda n: self._rank(n, key))
            if self._rank(best, key) >= current_rank:
                break
            hops.append(best)
            current = best
        result = (current, tuple(hops))
        self._routes[(source, key)] = result
        overlay.note_route(len(hops))
        return result

    def route_cost(self, source: int, key: int) -> float:
        """Underlay cost of the overlay route: per-hop shortest paths."""
        routing = self._overlay.routing
        total = 0.0
        current = source
        for hop in self.route(source, key)[1]:
            total += routing.distance(current, hop)
            current = hop
        return total


class PastryOverlay:
    """Seeded id assignment + per-component routing state."""

    def __init__(
        self, routing: RoutingTables, config: Optional[OverlayConfig] = None
    ) -> None:
        self.routing = routing
        self.config = config or OverlayConfig()
        n = routing.graph.n_nodes
        if self.config.ring_size < n:
            raise ValueError(
                f"ring of 2^{self.config.id_bits} ids cannot hold {n} nodes"
            )
        self.ids = self._assign_ids(n)
        self._version: Optional[int] = None
        self._live: frozenset = frozenset()
        self._universes: Dict[int, OverlayUniverse] = {}
        self.sync()

    # ------------------------------------------------------------------
    # id assignment
    # ------------------------------------------------------------------
    def _assign_ids(self, n: int) -> np.ndarray:
        if self.config.assignment == "hash":
            return self._hash_ids(n)
        return self._proximity_ids(n)

    def _hash_ids(self, n: int) -> np.ndarray:
        ring = self.config.ring_size
        taken = set()
        ids = np.zeros(n, dtype=np.int64)
        for node in range(n):
            candidate = _digest(self.config.seed, "id", node) % ring
            while candidate in taken:
                candidate = (candidate + 1) % ring
            taken.add(candidate)
            ids[node] = candidate
        return ids

    def _proximity_ids(self, n: int) -> np.ndarray:
        """Locality-preserving ids: a nearest-neighbour tour over the
        distance matrix, spread evenly around the ring.

        Consecutive tour positions are underlay-near, so numerically
        adjacent ids (and therefore shared id prefixes) correspond to
        short underlay paths — the lever that keeps rendezvous-tree
        edges cheap under subgrouping.  Unreachable pairs (the matrix
        can hold ``inf`` under active faults) are pushed to the end of
        the tour by a large finite penalty; the tour stays total and
        deterministic either way.
        """
        matrix = np.array(self.routing.distance_matrix(), dtype=np.float64)
        finite = matrix[np.isfinite(matrix)]
        penalty = (float(finite.max()) + 1.0) * (n + 1) if finite.size else 1.0
        matrix[~np.isfinite(matrix)] = penalty
        start = _digest(self.config.seed, "tour") % n
        visited = np.zeros(n, dtype=bool)
        tour = [start]
        visited[start] = True
        for _ in range(n - 1):
            row = matrix[tour[-1]].copy()
            row[visited] = np.inf
            tour.append(int(np.argmin(row)))  # ties: lowest node id
            visited[tour[-1]] = True
        ring = self.config.ring_size
        spacing = ring // n
        offset = _digest(self.config.seed, "offset") % spacing
        ids = np.zeros(n, dtype=np.int64)
        for position, node in enumerate(tour):
            ids[node] = offset + position * spacing
        return ids

    # ------------------------------------------------------------------
    # digit helpers
    # ------------------------------------------------------------------
    def digit(self, id_: int, index: int) -> int:
        """Digit ``index`` (0 = most significant) of an id."""
        config = self.config
        shift = config.id_bits - (index + 1) * config.digit_bits
        return (id_ >> shift) & ((1 << config.digit_bits) - 1)

    def common_digits(self, a: int, b: int) -> int:
        """Length of the shared digit prefix of two ids."""
        count = 0
        for index in range(self.config.n_digits):
            if self.digit(a, index) != self.digit(b, index):
                break
            count += 1
        return count

    def ring_distance(self, a: int, b: int) -> int:
        """Circular distance between two ring positions."""
        d = abs(int(a) - int(b))
        return min(d, self.config.ring_size - d)

    def subgroup_prefix(self, id_: int) -> int:
        """The id's top ``subgroup_digits`` digits (its subgroup domain)."""
        config = self.config
        shift = config.id_bits - config.subgroup_digits * config.digit_bits
        return id_ >> shift

    def subgroup_key(self, key: int, prefix: int) -> int:
        """The group key relocated into a subgroup's id domain."""
        config = self.config
        shift = config.id_bits - config.subgroup_digits * config.digit_bits
        return (prefix << shift) | (key & ((1 << shift) - 1))

    def group_key(self, nodes: np.ndarray) -> int:
        """Deterministic rendezvous key of a multicast member set."""
        digest = hashlib.blake2b(digest_size=8)
        digest.update(str(self.config.seed).encode("utf-8"))
        digest.update(np.ascontiguousarray(nodes, dtype=np.int64).tobytes())
        value = int.from_bytes(digest.digest(), "big")
        return value % self.config.ring_size

    # ------------------------------------------------------------------
    # liveness and universes
    # ------------------------------------------------------------------
    def sync(self) -> bool:
        """Refresh live membership against the topology version.

        Returns True when the topology moved since the last sync.  Each
        node that left or rejoined the ring makes its live ring
        neighbours patch their leaf sets; those patches are counted as
        ``overlay_leafset_repairs_total`` — the overlay's analogue of a
        shortest-path-tree recompute.
        """
        version = self.routing.topology_version
        if version == self._version:
            return False
        n = self.routing.graph.n_nodes
        live = frozenset(range(n)) - self.routing.failed_nodes
        if self._version is not None:
            changed = len(live ^ self._live)
            if changed:
                span = min(2 * self.config.leaf_span, max(len(live) - 1, 0))
                get_registry().counter(
                    "overlay_leafset_repairs_total",
                    "leaf-set slots patched after ring membership changes",
                ).inc(changed * span)
        self._live = live
        self._version = version
        self._universes.clear()
        get_registry().gauge(
            "overlay_nodes", "live nodes currently on the overlay ring"
        ).set(len(live))
        return True

    def universe_for(self, source: int) -> OverlayUniverse:
        """The routable component containing ``source`` (cached)."""
        self.sync()
        universe = self._universes.get(source)
        if universe is not None:
            return universe
        dist, _ = self.routing.shortest_paths(source).arrays()
        component = tuple(
            node
            for node in range(len(dist))
            if (node == source or node in self._live)
            and not math.isinf(dist[node])
        )
        universe = OverlayUniverse(self, component)
        for node in component:
            self._universes[node] = universe
        return universe

    # ------------------------------------------------------------------
    def note_route(self, hops: int) -> None:
        registry = get_registry()
        registry.counter(
            "overlay_routes_total", "greedy prefix routes resolved"
        ).inc()
        registry.counter(
            "overlay_route_hops_total", "overlay hops taken by routes"
        ).inc(hops)
