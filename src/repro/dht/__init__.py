"""Structured-overlay delivery: a deterministic Pastry-like DHT ring
(:class:`PastryOverlay`) and Scribe-like rendezvous multicast trees with
subscription subgrouping and route healing
(:class:`RendezvousDelivery`).

The layer is the ``overlay`` backend of
:func:`repro.network.multicast.overlay_multicast_cost` and the
:class:`~repro.delivery.Dispatcher`; see ``docs/overlay_multicast.md``.
"""

from .overlay import OverlayConfig, OverlayUniverse, PastryOverlay
from .scribe import RendezvousDelivery, RendezvousTree, overlay_for

__all__ = [
    "OverlayConfig",
    "OverlayUniverse",
    "PastryOverlay",
    "RendezvousDelivery",
    "RendezvousTree",
    "overlay_for",
]
