"""Delivery layer: executes delivery plans against the network cost
models (unicast / broadcast / dense-mode multicast / application-level
multicast)."""

from .adaptive import AdaptiveDecision, AdaptiveDeliveryPolicy
from .dispatcher import BACKENDS, SCHEMES, Dispatcher, resolve_backend

__all__ = [
    "BACKENDS",
    "SCHEMES",
    "Dispatcher",
    "resolve_backend",
    "AdaptiveDecision",
    "AdaptiveDeliveryPolicy",
]
