"""Delivery layer: executes delivery plans against the network cost
models (unicast / broadcast / dense-mode multicast / application-level
multicast)."""

from .adaptive import AdaptiveDecision, AdaptiveDeliveryPolicy
from .dispatcher import SCHEMES, Dispatcher

__all__ = ["SCHEMES", "Dispatcher", "AdaptiveDecision", "AdaptiveDeliveryPolicy"]
