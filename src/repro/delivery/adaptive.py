"""Dynamic unicast / multicast / broadcast selection.

The paper's abstract: "Some of these same concepts can be applied ...
to determine dynamically whether to unicast, multicast or broadcast
information about the events over the network to the matched
subscribers."  This module implements that per-event decision: price
the matcher's plan, the pure-unicast fallback and a broadcast (which
reaches a superset of the matched subscribers — permitted explicitly by
the paper, "possibly to a superset of those subscribers ... to be
filtered out as necessary"), and execute the cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..matching import DeliveryPlan
from ..obs import get_registry
from .dispatcher import Dispatcher

__all__ = ["AdaptiveDecision", "AdaptiveDeliveryPolicy"]


@dataclass(frozen=True)
class AdaptiveDecision:
    """Outcome of the per-event mode selection."""

    mode: str  # "unicast" | "multicast" | "broadcast"
    cost: float
    candidate_costs: Dict[str, float]

    @property
    def savings_vs_unicast(self) -> float:
        return self.candidate_costs["unicast"] - self.cost

    @property
    def realized_gap(self) -> float:
        """Cost the fixed policy (execute the matcher's plan) would have
        paid beyond the adaptive choice.  Zero when the plan was already
        the cheapest mode."""
        realized = self.candidate_costs.get(
            "multicast", self.candidate_costs["unicast"]
        )
        return realized - self.cost


class AdaptiveDeliveryPolicy:
    """Chooses the cheapest delivery mode per event.

    ``broadcast_penalty`` (>= 1) discounts against broadcast: delivering
    to every node costs filtering work at uninterested nodes, so a
    deployment may require broadcast to be strictly cheaper by a factor
    before flooding.  ``multicast`` is only considered when the plan
    actually uses a group.
    """

    def __init__(
        self, dispatcher: Dispatcher, broadcast_penalty: float = 1.0
    ) -> None:
        if broadcast_penalty < 1.0:
            raise ValueError("broadcast_penalty must be at least 1")
        self.dispatcher = dispatcher
        self.broadcast_penalty = broadcast_penalty
        #: per-mode selection counts, for reporting
        self.mode_counts: Dict[str, int] = {
            "unicast": 0,
            "multicast": 0,
            "broadcast": 0,
        }
        # instruments bound once: decide() sits on the per-event hot path
        registry = get_registry()
        counter = registry.counter(
            "delivery_mode_total", "adaptive per-event mode decisions"
        )
        self._mode_children = {
            mode: counter.labels(mode=mode) for mode in self.mode_counts
        }
        self._gap_hist = registry.histogram(
            "delivery_mode_cost_gap",
            "cost the matcher's fixed plan would have paid beyond the "
            "adaptive choice",
            buckets=(0.0, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0,
                     5000.0),
        ).labels()

    # ------------------------------------------------------------------
    def decide(self, publisher: int, plan: DeliveryPlan) -> AdaptiveDecision:
        """Pick the cheapest of {unicast, plan-multicast, broadcast}."""
        candidates: Dict[str, float] = {}
        candidates["unicast"] = self.dispatcher.unicast_reference(
            publisher, plan.interested
        )
        if plan.uses_multicast:
            candidates["multicast"] = self.dispatcher.plan_cost(
                publisher, plan
            )
        if len(plan.interested):
            candidates["broadcast"] = (
                self.dispatcher.broadcast_reference(publisher)
                * self.broadcast_penalty
            )
        mode = min(candidates, key=candidates.get)
        self.mode_counts[mode] += 1
        decision = AdaptiveDecision(
            mode=mode,
            cost=candidates[mode],
            candidate_costs=candidates,
        )
        self._mode_children[mode].inc()
        self._gap_hist.observe(decision.realized_gap)
        return decision

    # ------------------------------------------------------------------
    def mode_rates(self) -> Dict[str, float]:
        """Fraction of decisions per mode."""
        total = sum(self.mode_counts.values())
        if total == 0:
            return {mode: 0.0 for mode in self.mode_counts}
        return {
            mode: count / total for mode, count in self.mode_counts.items()
        }
