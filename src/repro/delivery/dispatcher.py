"""Turning delivery plans into network communication costs.

Given a :class:`~repro.matching.DeliveryPlan` for an event published at
some node, the dispatcher computes the total edge cost of executing the
plan under either multicast framework:

* ``"dense"`` — network-supported dense-mode multicast: each used group is
  reached over the shortest-path tree rooted at the publisher, pruned to
  the group's nodes.
* ``"alm"`` — application-level multicast: each used group forms a
  minimum-spanning-tree overlay (in shortest-path metric) including the
  publisher, and every overlay hop is a unicast.
* ``"sparse"`` — sparse-mode (shared-tree) multicast: the publisher
  unicasts to a rendezvous-point core node, which forwards down the
  shared shortest-path tree to the group.  The paper evaluates dense
  mode; this alternative quantifies the shared-tree detour.

Unicast legs always travel the shortest path from the publisher.  A node
already covered by one of the plan's multicast groups does not need a
separate unicast copy — the local broker hands the message to co-located
subscribers — so unicast targets are de-duplicated against multicast
coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..matching import DeliveryPlan
from ..network import (
    RoutingTables,
    application_multicast_cost,
    broadcast_cost,
    dense_multicast_cost,
    ideal_multicast_cost,
    select_core,
    sparse_multicast_cost,
    unicast_cost,
)
from ..workload import SubscriptionSet

__all__ = ["Dispatcher", "SCHEMES"]

SCHEMES = ("dense", "alm", "sparse")


class Dispatcher:
    """Computes delivery costs of plans and of the reference schemes."""

    def __init__(
        self,
        routing: RoutingTables,
        subscriptions: SubscriptionSet,
        scheme: str = "dense",
        core: Optional[int] = None,
    ) -> None:
        """``core`` designates the sparse-mode rendezvous point; when
        omitted the network's 1-median is used (computed lazily, only
        when the sparse scheme actually prices a plan)."""
        if scheme not in SCHEMES:
            raise ValueError(f"scheme must be one of {SCHEMES}")
        self.routing = routing
        self.subscriptions = subscriptions
        self.scheme = scheme
        self._core = core

    @property
    def core(self) -> int:
        """The sparse-mode rendezvous point node."""
        if self._core is None:
            self._core = select_core(self.routing)
        return self._core

    # ------------------------------------------------------------------
    def plan_cost(self, publisher: int, plan: DeliveryPlan) -> float:
        """Network cost of executing ``plan`` from ``publisher``."""
        total = 0.0
        covered_nodes: List[np.ndarray] = []
        for members in plan.group_members:
            nodes = self.subscriptions.nodes_of_subscribers(members)
            covered_nodes.append(nodes)
            total += self._group_cost(publisher, nodes)
        unicast_nodes = self.subscriptions.nodes_of_subscribers(
            plan.unicast_subscribers
        )
        if covered_nodes:
            already = np.unique(np.concatenate(covered_nodes))
            unicast_nodes = np.setdiff1d(unicast_nodes, already)
        total += unicast_cost(self.routing, publisher, unicast_nodes)
        return total

    def _group_cost(self, publisher: int, nodes) -> float:
        """Cost of one multicast transmission under the active scheme."""
        if self.scheme == "dense":
            return dense_multicast_cost(self.routing, publisher, nodes)
        if self.scheme == "alm":
            return application_multicast_cost(self.routing, publisher, nodes)
        return sparse_multicast_cost(self.routing, publisher, nodes, self.core)

    # ------------------------------------------------------------------
    # reference schemes of Tables 1 and 2
    # ------------------------------------------------------------------
    def unicast_reference(
        self, publisher: int, interested: Sequence[int]
    ) -> float:
        """Pure unicast to every interested subscriber's node."""
        nodes = self.subscriptions.nodes_of_subscribers(interested)
        return unicast_cost(self.routing, publisher, nodes)

    def broadcast_reference(self, publisher: int) -> float:
        """Flooding every network node."""
        return broadcast_cost(self.routing, publisher)

    def ideal_reference(
        self, publisher: int, interested: Sequence[int]
    ) -> float:
        """Per-event ideal multicast group (exactly the interested nodes).

        Under the ``alm`` scheme the ideal group still communicates over
        an overlay MST, mirroring how the achievable optimum differs
        between the two frameworks.
        """
        nodes = self.subscriptions.nodes_of_subscribers(interested)
        if len(nodes) == 0:
            return 0.0
        if self.scheme == "dense":
            return ideal_multicast_cost(self.routing, publisher, nodes)
        return self._group_cost(publisher, nodes)
