"""Turning delivery plans into network communication costs.

Given a :class:`~repro.matching.DeliveryPlan` for an event published at
some node, the dispatcher computes the total edge cost of executing the
plan under either multicast framework:

* ``"dense"`` — network-supported dense-mode multicast: each used group is
  reached over the shortest-path tree rooted at the publisher, pruned to
  the group's nodes.
* ``"alm"`` — application-level multicast: each used group forms a
  minimum-spanning-tree overlay (in shortest-path metric) including the
  publisher, and every overlay hop is a unicast.
* ``"sparse"`` — sparse-mode (shared-tree) multicast: the publisher
  unicasts to a rendezvous-point core node, which forwards down the
  shared shortest-path tree to the group.  The paper evaluates dense
  mode; this alternative quantifies the shared-tree detour.

Unicast legs always travel the shortest path from the publisher.  A node
already covered by one of the plan's multicast groups does not need a
separate unicast copy — the local broker hands the message to co-located
subscribers — so unicast targets are de-duplicated against multicast
coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..matching import DeliveryPlan
from ..network import (
    RoutingTables,
    application_multicast_cost,
    broadcast_cost,
    dense_multicast_cost,
    ideal_multicast_cost,
    select_core,
    sparse_multicast_cost,
    unicast_cost,
)
from ..workload import SubscriptionSet

__all__ = ["Dispatcher", "SCHEMES"]

SCHEMES = ("dense", "alm", "sparse")


class Dispatcher:
    """Computes delivery costs of plans and of the reference schemes."""

    def __init__(
        self,
        routing: RoutingTables,
        subscriptions: SubscriptionSet,
        scheme: str = "dense",
        core: Optional[int] = None,
    ) -> None:
        """``core`` designates the sparse-mode rendezvous point; when
        omitted the network's 1-median is used (computed lazily, only
        when the sparse scheme actually prices a plan)."""
        if scheme not in SCHEMES:
            raise ValueError(f"scheme must be one of {SCHEMES}")
        self.routing = routing
        self.subscriptions = subscriptions
        self.scheme = scheme
        self._core = core
        # multicast-cost memo: a clustering's group node-sets are frozen,
        # so the cost of reaching a group from a given publisher never
        # changes — price it once and replay it for every later event
        self._group_cost_cache: Dict[Tuple[int, bytes], float] = {}
        self._group_nodes_cache: Dict[bytes, np.ndarray] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def core(self) -> int:
        """The sparse-mode rendezvous point node."""
        if self._core is None:
            self._core = select_core(self.routing)
        return self._core

    # ------------------------------------------------------------------
    def plan_cost(self, publisher: int, plan: DeliveryPlan) -> float:
        """Network cost of executing ``plan`` from ``publisher``."""
        total = 0.0
        covered_nodes: List[np.ndarray] = []
        for members in plan.group_members:
            nodes = self.group_nodes(members)
            covered_nodes.append(nodes)
            total += self.group_cost(publisher, nodes)
        unicast_nodes = self.subscriptions.nodes_of_subscribers(
            plan.unicast_subscribers
        )
        if covered_nodes:
            already = (
                covered_nodes[0]
                if len(covered_nodes) == 1
                else np.unique(np.concatenate(covered_nodes))
            )
            unicast_nodes = np.setdiff1d(
                unicast_nodes, already, assume_unique=True
            )
        total += unicast_cost(self.routing, publisher, unicast_nodes)
        return total

    def plan_costs(
        self, publishers: Sequence[int], plans: Sequence[DeliveryPlan]
    ) -> np.ndarray:
        """Costs of many plans at once (the batch-evaluation entry point).

        The per-``(publisher, node-set)`` memo means each of a
        clustering's K group trees is priced once per publisher instead of
        once per event.
        """
        if len(publishers) != len(plans):
            raise ValueError("publishers / plans length mismatch")
        return np.array(
            [
                self.plan_cost(int(publisher), plan)
                for publisher, plan in zip(publishers, plans)
            ],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    def group_nodes(self, members: Sequence[int]) -> np.ndarray:
        """Unique network nodes of a (frozen) member set, memoised."""
        arr = np.asarray(members, dtype=np.int64)
        key = arr.tobytes()
        nodes = self._group_nodes_cache.get(key)
        if nodes is None:
            nodes = self.subscriptions.nodes_of_subscribers(arr)
            self._group_nodes_cache[key] = nodes
        return nodes

    def group_cost(self, publisher: int, nodes: np.ndarray) -> float:
        """Memoised multicast cost of one ``(publisher, node-set)`` pair."""
        key = (publisher, nodes.tobytes())
        cost = self._group_cost_cache.get(key)
        if cost is None:
            self.cache_misses += 1
            cost = self._group_cost(publisher, nodes)
            self._group_cost_cache[key] = cost
        else:
            self.cache_hits += 1
        return cost

    def cache_info(self) -> Dict[str, float]:
        """Hit/miss counters of the multicast-cost memo (for benchmarks)."""
        lookups = self.cache_hits + self.cache_misses
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "entries": len(self._group_cost_cache),
            "hit_rate": self.cache_hits / lookups if lookups else 0.0,
        }

    def reset_cache_stats(self) -> None:
        """Zero the hit/miss counters (the memo itself is kept)."""
        self.cache_hits = 0
        self.cache_misses = 0

    def _group_cost(self, publisher: int, nodes) -> float:
        """Cost of one multicast transmission under the active scheme."""
        if self.scheme == "dense":
            return dense_multicast_cost(self.routing, publisher, nodes)
        if self.scheme == "alm":
            return application_multicast_cost(self.routing, publisher, nodes)
        return sparse_multicast_cost(self.routing, publisher, nodes, self.core)

    # ------------------------------------------------------------------
    # reference schemes of Tables 1 and 2
    # ------------------------------------------------------------------
    def unicast_reference(
        self,
        publisher: int,
        interested: Sequence[int],
        nodes: Optional[np.ndarray] = None,
    ) -> float:
        """Pure unicast to every interested subscriber's node.

        ``nodes`` may supply the precomputed node set of ``interested``
        (the experiment context resolves each event's nodes once and
        reuses them across all three reference costs and schemes).
        """
        if nodes is None:
            nodes = self.subscriptions.nodes_of_subscribers(interested)
        return unicast_cost(self.routing, publisher, nodes)

    def broadcast_reference(self, publisher: int) -> float:
        """Flooding every network node."""
        return broadcast_cost(self.routing, publisher)

    def ideal_reference(
        self,
        publisher: int,
        interested: Sequence[int],
        nodes: Optional[np.ndarray] = None,
    ) -> float:
        """Per-event ideal multicast group (exactly the interested nodes).

        Under the ``alm`` scheme the ideal group still communicates over
        an overlay MST, mirroring how the achievable optimum differs
        between the two frameworks.  ``nodes`` may supply the precomputed
        node set of ``interested``.
        """
        if nodes is None:
            nodes = self.subscriptions.nodes_of_subscribers(interested)
        if len(nodes) == 0:
            return 0.0
        if self.scheme == "dense":
            return ideal_multicast_cost(self.routing, publisher, nodes)
        return self._group_cost(publisher, nodes)
