"""Turning delivery plans into network communication costs.

Given a :class:`~repro.matching.DeliveryPlan` for an event published at
some node, the dispatcher computes the total edge cost of executing the
plan under either multicast framework:

* ``"dense"`` — network-supported dense-mode multicast: each used group is
  reached over the shortest-path tree rooted at the publisher, pruned to
  the group's nodes.
* ``"alm"`` — application-level multicast: each used group forms a
  minimum-spanning-tree overlay (in shortest-path metric) including the
  publisher, and every overlay hop is a unicast.
* ``"sparse"`` — sparse-mode (shared-tree) multicast: the publisher
  unicasts to a rendezvous-point core node, which forwards down the
  shared shortest-path tree to the group.  The paper evaluates dense
  mode; this alternative quantifies the shared-tree detour.

Unicast legs always travel the shortest path from the publisher.  A node
already covered by one of the plan's multicast groups does not need a
separate unicast copy — the local broker hands the message to co-located
subscribers — so unicast targets are de-duplicated against multicast
coverage.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..matching import DeliveryPlan
from ..network import (
    RoutingTables,
    application_multicast_cost,
    broadcast_cost,
    dense_multicast_cost,
    ideal_multicast_cost,
    overlay_multicast_cost,
    select_core,
    sparse_multicast_cost,
    unicast_cost,
)
from ..obs import MetricsRegistry, get_registry, get_tracer
from ..workload import SubscriptionSet

__all__ = ["Dispatcher", "SCHEMES", "BACKENDS", "resolve_backend"]

SCHEMES = ("dense", "alm", "sparse", "overlay")

#: user-facing multicast backend names -> dispatcher scheme.  The CLI
#: speaks backend names ("application" reads better than "alm" on a
#: flag); the dispatcher speaks schemes.
BACKENDS = {
    "dense": "dense",
    "sparse": "sparse",
    "application": "alm",
    "alm": "alm",
    "overlay": "overlay",
}


def resolve_backend(name: str) -> str:
    """Map a ``--multicast-backend`` name to its dispatcher scheme.

    Raises a :class:`ValueError` that lists the valid backends, so CLI
    surfaces report a typo instead of dying on a bare ``KeyError``.
    """
    try:
        return BACKENDS[name]
    except KeyError:
        valid = ", ".join(sorted(BACKENDS))
        raise ValueError(
            f"unknown multicast backend {name!r}; valid backends: {valid}"
        ) from None

#: distinguishes concurrently live dispatchers in the shared registry
_instance_ids = itertools.count()


def _next_instance_id() -> str:
    """A process-unique instance label for one dispatcher.

    The counter alone is not fork-safe: child workers inherit its state,
    so dispatchers constructed in sibling processes would collide on the
    same label and their cache statistics would be indistinguishable
    after a merge.  Salting with the pid keeps ids collision-free across
    processes without any cross-process coordination.
    """
    return f"p{os.getpid()}.d{next(_instance_ids)}"


class Dispatcher:
    """Computes delivery costs of plans and of the reference schemes."""

    def __init__(
        self,
        routing: RoutingTables,
        subscriptions: SubscriptionSet,
        scheme: str = "dense",
        core: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        """``core`` designates the sparse-mode rendezvous point; when
        omitted the network's 1-median is used (computed lazily, only
        when the sparse scheme actually prices a plan).  ``registry``
        overrides the process-wide metrics registry the cache statistics
        are recorded into.  ``max_entries`` bounds each memo; the oldest
        entry is evicted when the bound is hit (``None`` = unbounded)."""
        if scheme not in SCHEMES:
            raise ValueError(f"scheme must be one of {SCHEMES}")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.routing = routing
        self.subscriptions = subscriptions
        self.scheme = scheme
        self._core = core
        self._core_given = core is not None
        self._max_entries = max_entries
        self._overlay_delivery = None
        # multicast-cost memo: a clustering's group node-sets are frozen,
        # so the cost of reaching a group from a given publisher only
        # changes when the topology does — price it once and replay it,
        # dropping entries when routing invalidates their publisher's tree
        self._group_cost_cache: Dict[Tuple[int, bytes], float] = {}
        self._group_nodes_cache: Dict[bytes, np.ndarray] = {}
        # registry-backed hit/miss accounting, one label set per live
        # dispatcher so concurrent instances don't mix their statistics;
        # counters are bound once here and incremented per lookup
        self._bind_metrics(registry if registry is not None else get_registry())
        routing.add_invalidation_listener(self._on_topology_change)

    def _bind_metrics(self, registry: MetricsRegistry) -> None:
        lookups = registry.counter(
            "dispatcher_cache_lookups_total",
            "per-lookup hit/miss counts of the dispatcher memos",
        )
        # entry-lifecycle events are a separate family: an invalidation
        # (topology change made the entry wrong) is not an eviction
        # (capacity pressure dropped a still-correct entry), and chaos
        # runs must not masquerade as cache churn
        dropped = registry.counter(
            "dispatcher_cache_entries_dropped_total",
            "memo entries dropped, by cause",
        )
        scheme = self.scheme
        instance = _next_instance_id()
        self._instance = instance
        self._cost_hits = lookups.labels(
            cache="group_cost", result="hit", scheme=scheme, instance=instance
        )
        self._cost_misses = lookups.labels(
            cache="group_cost", result="miss", scheme=scheme, instance=instance
        )
        self._nodes_hits = lookups.labels(
            cache="group_nodes", result="hit", scheme=scheme, instance=instance
        )
        self._nodes_misses = lookups.labels(
            cache="group_nodes", result="miss", scheme=scheme, instance=instance
        )
        self._cost_invalidations = dropped.labels(
            cache="group_cost", reason="invalidation", scheme=scheme,
            instance=instance,
        )
        self._cost_evictions = dropped.labels(
            cache="group_cost", reason="eviction", scheme=scheme,
            instance=instance,
        )
        self._nodes_invalidations = dropped.labels(
            cache="group_nodes", reason="invalidation", scheme=scheme,
            instance=instance,
        )
        self._nodes_evictions = dropped.labels(
            cache="group_nodes", reason="eviction", scheme=scheme,
            instance=instance,
        )

    def rebind_metrics(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Re-resolve the bound statistic counters (fresh instance id).

        A forked worker that installs a fresh process registry
        (:func:`repro.obs.reset_worker_state`) calls this on dispatchers
        created before the fork: their handles still point at the
        inherited copy of the parent's registry, so without rebinding the
        worker's cache statistics would vanish from the merged totals.
        """
        self._bind_metrics(registry if registry is not None else get_registry())

    @property
    def core(self) -> int:
        """The sparse-mode rendezvous point node."""
        if self._core is None:
            self._core = select_core(self.routing)
        return self._core

    # ------------------------------------------------------------------
    def _on_topology_change(self, sources) -> None:
        """Routing invalidation hook: drop only the memo entries whose
        priced trees traverse the changed part of the network.

        Dense-mode costs depend solely on the publisher's shortest-path
        tree, so entries of unaffected publishers survive.  ALM and
        sparse costs route through the metric closure / the core's shared
        tree, which any topology change can alter — those schemes flush.
        """
        if self.scheme == "dense" and sources is not None:
            keys = [k for k in self._group_cost_cache if k[0] in sources]
            for key in keys:
                del self._group_cost_cache[key]
            dropped = len(keys)
        else:
            dropped = len(self._group_cost_cache)
            self._group_cost_cache.clear()
        if dropped:
            self._cost_invalidations.inc(dropped)
        if not self._core_given:
            # re-elect the rendezvous point on the changed topology
            self._core = None

    def invalidate(self, sources=None) -> None:
        """Manually drop cost-memo entries (all, or per-publisher set)."""
        self._on_topology_change(
            frozenset(sources) if sources is not None else None
        )

    def invalidate_members(self, members: Sequence[int]) -> None:
        """Surgically drop the memo entries of one pre-change member set.

        Online churn mutates a group's member column in place (a join
        splices a subscriber in, a leave removes it, and under
        aggregation a split/merge re-shapes the columns the matcher
        serves).  The old column's byte key can never be looked up
        again — but a *renumbering* of subscriber ids (compaction, an
        aggregate split re-using a column shape) can mint the same byte
        key for a different population, at which point the retained
        ``group_nodes`` entry silently resolves to the wrong nodes and
        every ``(publisher, node-set)`` cost derived from it prices the
        wrong trees.  The broker calls this with the column as it was
        *before* the mutation; both the node-set entry and the cost
        entries priced from it are dropped, counted as invalidations
        (the entry became wrong) rather than evictions (capacity
        pressure).
        """
        arr = np.asarray(members, dtype=np.int64)
        nodes = self._group_nodes_cache.pop(arr.tobytes(), None)
        if nodes is None:
            return
        self._nodes_invalidations.inc()
        stale_nodes = nodes.tobytes()
        stale = [
            key for key in self._group_cost_cache if key[1] == stale_nodes
        ]
        for key in stale:
            del self._group_cost_cache[key]
        if stale:
            self._cost_invalidations.inc(len(stale))

    # ------------------------------------------------------------------
    def plan_cost(self, publisher: int, plan: DeliveryPlan) -> float:
        """Network cost of executing ``plan`` from ``publisher``."""
        total = 0.0
        covered_nodes: List[np.ndarray] = []
        for members in plan.group_members:
            nodes = self.group_nodes(members)
            covered_nodes.append(nodes)
            total += self.group_cost(publisher, nodes)
        unicast_nodes = self.subscriptions.nodes_of_subscribers(
            plan.unicast_subscribers
        )
        if covered_nodes:
            already = (
                covered_nodes[0]
                if len(covered_nodes) == 1
                else np.unique(np.concatenate(covered_nodes))
            )
            unicast_nodes = np.setdiff1d(
                unicast_nodes, already, assume_unique=True
            )
        total += unicast_cost(self.routing, publisher, unicast_nodes)
        return total

    def plan_costs(
        self, publishers: Sequence[int], plans: Sequence[DeliveryPlan]
    ) -> np.ndarray:
        """Costs of many plans at once (the batch-evaluation entry point).

        The per-``(publisher, node-set)`` memo means each of a
        clustering's K group trees is priced once per publisher instead of
        once per event.
        """
        if len(publishers) != len(plans):
            raise ValueError("publishers / plans length mismatch")
        with get_tracer().span(
            "delivery.plan_costs", scheme=self.scheme, n_plans=len(plans)
        ):
            return np.array(
                [
                    self.plan_cost(int(publisher), plan)
                    for publisher, plan in zip(publishers, plans)
                ],
                dtype=np.float64,
            )

    # ------------------------------------------------------------------
    def group_nodes(self, members: Sequence[int]) -> np.ndarray:
        """Unique network nodes of a (frozen) member set, memoised."""
        arr = np.asarray(members, dtype=np.int64)
        key = arr.tobytes()
        nodes = self._group_nodes_cache.get(key)
        if nodes is None:
            self._nodes_misses.inc()
            nodes = self.subscriptions.nodes_of_subscribers(arr)
            if (
                self._max_entries is not None
                and len(self._group_nodes_cache) >= self._max_entries
            ):
                self._group_nodes_cache.pop(
                    next(iter(self._group_nodes_cache))
                )
                self._nodes_evictions.inc()
            self._group_nodes_cache[key] = nodes
        else:
            self._nodes_hits.inc()
        return nodes

    def group_cost(self, publisher: int, nodes: np.ndarray) -> float:
        """Memoised multicast cost of one ``(publisher, node-set)`` pair.

        Hit/miss statistics are recorded per lookup — a ``plan_costs``
        batch over N plans with G groups each contributes N·G lookup
        events, not one per call.
        """
        key = (publisher, nodes.tobytes())
        cost = self._group_cost_cache.get(key)
        if cost is None:
            self._cost_misses.inc()
            cost = self._group_cost(publisher, nodes)
            if (
                self._max_entries is not None
                and len(self._group_cost_cache) >= self._max_entries
            ):
                self._group_cost_cache.pop(
                    next(iter(self._group_cost_cache))
                )
                self._cost_evictions.inc()
            self._group_cost_cache[key] = cost
        else:
            self._cost_hits.inc()
        return cost

    @property
    def cache_hits(self) -> int:
        """This dispatcher's multicast-cost-memo hits (registry-backed)."""
        return int(self._cost_hits.value)

    @property
    def cache_misses(self) -> int:
        """This dispatcher's multicast-cost-memo misses (registry-backed)."""
        return int(self._cost_misses.value)

    def cache_info(self) -> Dict[str, float]:
        """Hit/miss counters of the multicast-cost memo (for benchmarks).

        Thin shim over the registry-backed counters; the historical keys
        are preserved, with the node-set memo's counts alongside.
        Entries dropped because a topology change made them stale are
        reported as ``invalidations``, distinct from capacity
        ``evictions`` — a chaos run shows up as invalidation traffic, not
        as ordinary cache churn.
        """
        hits, misses = self.cache_hits, self.cache_misses
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "entries": len(self._group_cost_cache),
            "hit_rate": hits / lookups if lookups else 0.0,
            "invalidations": int(self._cost_invalidations.value),
            "evictions": int(self._cost_evictions.value),
            "nodes_hits": int(self._nodes_hits.value),
            "nodes_misses": int(self._nodes_misses.value),
            "nodes_entries": len(self._group_nodes_cache),
            "nodes_invalidations": int(self._nodes_invalidations.value),
            "nodes_evictions": int(self._nodes_evictions.value),
        }

    def reset_cache_stats(self) -> None:
        """Zero the hit/miss counters (the memos themselves are kept)."""
        self._cost_hits.reset()
        self._cost_misses.reset()
        self._nodes_hits.reset()
        self._nodes_misses.reset()
        self._cost_invalidations.reset()
        self._cost_evictions.reset()
        self._nodes_invalidations.reset()
        self._nodes_evictions.reset()

    def _group_cost(self, publisher: int, nodes) -> float:
        """Cost of one multicast transmission under the active scheme."""
        if self.scheme == "dense":
            return dense_multicast_cost(self.routing, publisher, nodes)
        if self.scheme == "alm":
            return application_multicast_cost(self.routing, publisher, nodes)
        if self.scheme == "overlay":
            return overlay_multicast_cost(
                self.routing, publisher, nodes, self._overlay()
            )
        return sparse_multicast_cost(self.routing, publisher, nodes, self.core)

    def _overlay(self):
        """The shared per-routing rendezvous delivery layer (lazy).

        Resolved through :func:`repro.dht.overlay_for` so every
        dispatcher and broker rebuild over the same routing tables
        reuses one set of rendezvous trees, which *heal* (reattach)
        across topology changes instead of rebuilding — the dispatcher
        memo still flushes on change (costs moved), but the tree
        structure underneath survives.
        """
        delivery = self._overlay_delivery
        if delivery is None:
            from ..dht import overlay_for

            delivery = overlay_for(self.routing)
            self._overlay_delivery = delivery
        return delivery

    # ------------------------------------------------------------------
    # reference schemes of Tables 1 and 2
    # ------------------------------------------------------------------
    def unicast_reference(
        self,
        publisher: int,
        interested: Sequence[int],
        nodes: Optional[np.ndarray] = None,
    ) -> float:
        """Pure unicast to every interested subscriber's node.

        ``nodes`` may supply the precomputed node set of ``interested``
        (the experiment context resolves each event's nodes once and
        reuses them across all three reference costs and schemes).
        """
        if nodes is None:
            nodes = self.subscriptions.nodes_of_subscribers(interested)
        return unicast_cost(self.routing, publisher, nodes)

    def broadcast_reference(self, publisher: int) -> float:
        """Flooding every network node."""
        return broadcast_cost(self.routing, publisher)

    def ideal_reference(
        self,
        publisher: int,
        interested: Sequence[int],
        nodes: Optional[np.ndarray] = None,
    ) -> float:
        """Per-event ideal multicast group (exactly the interested nodes).

        Under the ``alm`` scheme the ideal group still communicates over
        an overlay MST, mirroring how the achievable optimum differs
        between the two frameworks.  ``nodes`` may supply the precomputed
        node set of ``interested``.
        """
        if nodes is None:
            nodes = self.subscriptions.nodes_of_subscribers(interested)
        if len(nodes) == 0:
            return 0.0
        if self.scheme == "dense":
            return ideal_multicast_cost(self.routing, publisher, nodes)
        return self._group_cost(publisher, nodes)
