"""Kernel backend selection and the always-available numpy backend.

Three interchangeable backends implement the hot-path membership
kernels over packed bitsets (:mod:`repro.kernels.bitset`):

``numpy``
    Pure numpy: ``np.bitwise_count`` over uint64 words.  Always
    available; the reference the other two are tested byte-identical
    against.
``native``
    A small C file shipped with the package, compiled on demand with the
    system C compiler and called through ctypes
    (:mod:`repro.kernels.native`).  Provides the fused agglomerative
    ``pairwise_fit`` kernel.
``numba``
    Jitted kernels (:mod:`repro.kernels.numba_backend`); available only
    when numba is installed.

Selection happens lazily at first use: ``REPRO_KERNEL_BACKEND`` names a
backend or ``auto`` (the default), which prefers ``numba``, then
``native``, then ``numpy``.  :func:`set_backend` overrides at runtime
(the CLI's ``--backend`` flag routes here).  Requesting an unavailable
backend degrades to numpy with a warning rather than failing — results
are identical by construction, only speed differs.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, List, Optional

import numpy as np

from .bitset import PackedBits, intersect_count_rows, popcount_rows

__all__ = [
    "KERNEL_BACKEND_ENV",
    "NumpyBackend",
    "available_backends",
    "backend_name",
    "get_backend",
    "set_backend",
]

KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

_BACKEND_NAMES = ("numpy", "native", "numba")

#: preference order of ``auto`` (first available wins, numpy always is)
_AUTO_ORDER = ("numba", "native", "numpy")


class NumpyBackend:
    """Pure-numpy bitset kernels — the portable reference backend."""

    name = "numpy"
    compiled = False

    def popcount_rows(self, words: np.ndarray) -> np.ndarray:
        return popcount_rows(words)

    def intersect_counts(
        self, words: np.ndarray, row: np.ndarray
    ) -> np.ndarray:
        return intersect_count_rows(words, row)

    def waste_matrix(
        self, packed: PackedBits, probs: np.ndarray
    ) -> np.ndarray:
        """Float32 pairwise waste matrix from packed rows.

        Row-blocked broadcast AND + popcount; float op order matches the
        matmul formulation in :func:`repro.clustering.distance.
        pairwise_waste_matrix` (intersections are exact small integers in
        both, so the float32 results are bit-equal).
        """
        words = packed.words
        m = len(words)
        sizes = popcount_rows(words).astype(np.float32)
        probs32 = np.asarray(probs, dtype=np.float32)
        out = np.empty((m, m), dtype=np.float32)
        # bound the (block, m, W) AND temporary to ~8 MiB
        word_bytes = max(1, words.shape[1]) * 8
        block = max(1, (8 << 20) // max(1, m * word_bytes))
        for start in range(0, m, block):
            stop = min(m, start + block)
            inter = (
                np.bitwise_count(words[start:stop, None, :] & words[None, :, :])
                .sum(axis=2, dtype=np.int64)
                .astype(np.float32)
            )
            chunk = sizes[None, :] - inter
            chunk *= probs32[start:stop, None]
            other = sizes[start:stop, None] - inter
            other *= probs32[None, :]
            chunk += other
            out[start:stop] = chunk
        np.fill_diagonal(out, 0.0)
        return out

    def group_mass(
        self,
        covered: np.ndarray,
        cell_group_ext: np.ndarray,
        cell_pmf: np.ndarray,
        n_groups: int,
    ) -> np.ndarray:
        """Per-group mass of covered cells via one unmasked bincount.

        ``cell_group_ext`` maps unclustered cells to the sentinel bucket
        ``n_groups``, which is sliced off — same accumulation order as
        the masked two-gather formulation it replaces.
        """
        return np.bincount(
            cell_group_ext[covered],
            weights=cell_pmf[covered],
            minlength=n_groups + 1,
        )[:n_groups]

    def group_scorer(
        self,
        cell_group_ext: np.ndarray,
        cell_pmf: np.ndarray,
        group_mass: np.ndarray,
    ):
        """A bound join scorer: ``scorer(covered) -> (group, overlap)``.

        ``group`` is the argmin of ``group_mass[g] - 2 * overlap[g]``
        over the groups with positive overlap (first occurrence on
        ties), or ``-1`` when the covered cells touch no group — the
        online maintainer's join placement rule in one call.
        """
        n_groups = len(group_mass)

        def scorer(covered: np.ndarray):
            overlap = np.bincount(
                cell_group_ext[covered],
                weights=cell_pmf[covered],
                minlength=n_groups + 1,
            )[:n_groups]
            candidates = np.nonzero(overlap > 0)[0]
            if len(candidates) == 0:
                return -1, overlap
            scores = group_mass[candidates] - 2.0 * overlap[candidates]
            return int(candidates[np.argmin(scores)]), overlap

        return scorer

    def pairwise_fit(self, packed, probs, n_groups):
        """No fused merge loop in numpy — callers run the python loop."""
        return None


_cache: Dict[str, Optional[object]] = {}
_active: Optional[object] = None


def _probe(name: str):
    """Instantiate (once) the named backend; ``None`` if unavailable."""
    if name in _cache:
        return _cache[name]
    backend = None
    try:
        if name == "numpy":
            backend = NumpyBackend()
        elif name == "native":
            from .native import load_native_backend

            backend = load_native_backend()
        elif name == "numba":
            from .numba_backend import load_numba_backend

            backend = load_numba_backend()
    except Exception:  # unavailable backends must never break callers
        backend = None
    _cache[name] = backend
    return backend


def available_backends() -> List[str]:
    """Names of the backends usable in this process."""
    return [name for name in _BACKEND_NAMES if _probe(name) is not None]


def _resolve(name: str, strict: bool):
    name = (name or "auto").strip().lower()
    if name == "auto":
        for candidate in _AUTO_ORDER:
            backend = _probe(candidate)
            if backend is not None:
                return backend
        return _probe("numpy")  # unreachable: numpy always loads
    if name not in _BACKEND_NAMES:
        message = (
            f"unknown kernel backend {name!r}; "
            f"expected one of {('auto',) + _BACKEND_NAMES}"
        )
        if strict:
            raise ValueError(message)
        warnings.warn(message + "; using auto", RuntimeWarning, stacklevel=3)
        return _resolve("auto", strict=False)
    backend = _probe(name)
    if backend is None:
        warnings.warn(
            f"kernel backend {name!r} is unavailable "
            f"(missing compiler or module); falling back to numpy",
            RuntimeWarning,
            stacklevel=3,
        )
        return _probe("numpy")
    return backend


def get_backend():
    """The active kernel backend (resolving the environment on first use)."""
    global _active
    if _active is None:
        _active = _resolve(os.environ.get(KERNEL_BACKEND_ENV, "auto"),
                           strict=False)
    return _active


def set_backend(name: str):
    """Select a backend by name (``auto`` re-runs the preference order).

    Unknown names raise; known-but-unavailable names fall back to numpy
    with a warning.  Returns the backend now active.
    """
    global _active
    _active = _resolve(str(name), strict=True)
    return _active


def backend_name() -> str:
    """Name of the active backend (``numpy`` / ``native`` / ``numba``)."""
    return get_backend().name


def _reset_for_testing() -> None:
    """Drop the resolved backend so the environment is re-read."""
    global _active
    _active = None
