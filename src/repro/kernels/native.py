"""The gcc-compiled native kernel backend.

``_native.c`` ships with the package as source; at first use it is
compiled into a shared library under a per-user cache directory
(``$REPRO_KERNEL_CACHE`` or ``<tmpdir>/repro-kernels-<uid>``) and loaded
through :mod:`ctypes`.  No build step, no extension module machinery —
if a C compiler is absent or the compile fails, the backend simply
reports itself unavailable and selection falls back to pure numpy.

The compile pins ``-ffp-contract=off``: the kernels replicate numpy's
float rounding order operation for operation, and letting the compiler
fuse multiply-adds would silently break the byte-equality guarantee the
equivalence suite enforces.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

from .bitset import PackedBits

__all__ = ["NativeBackend", "load_native_backend"]

_SOURCE = Path(__file__).with_name("_native.c")

#: bump to invalidate cached shared libraries on wrapper changes
_ABI_TAG = "v2"


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    uid = getattr(os, "getuid", lambda: "any")()
    return Path(tempfile.gettempdir()) / f"repro-kernels-{uid}"


def _compiler() -> Optional[str]:
    for name in ("gcc", "cc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build_library() -> Optional[ctypes.CDLL]:
    compiler = _compiler()
    if compiler is None or not _SOURCE.is_file():
        return None
    source = _SOURCE.read_text()
    digest = hashlib.sha256(
        (_ABI_TAG + compiler + source).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = cache / f"repro_native_{digest}.so"
    if not lib_path.is_file():
        try:
            cache.mkdir(parents=True, exist_ok=True)
        except OSError:
            return None
        base = [compiler, "-O3", "-ffp-contract=off", "-shared", "-fPIC"]
        for extra in (["-march=native", "-funroll-loops"], []):
            tmp_path = cache / f".{lib_path.name}.{os.getpid()}.tmp"
            cmd = base + extra + ["-o", str(tmp_path), str(_SOURCE)]
            try:
                subprocess.run(
                    cmd, check=True, capture_output=True, timeout=120
                )
                os.replace(tmp_path, lib_path)
                break
            except (OSError, subprocess.SubprocessError):
                try:
                    tmp_path.unlink()
                except OSError:
                    pass
        else:
            return None
    try:
        return ctypes.CDLL(str(lib_path))
    except OSError:
        return None


def _ptr(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


class NativeBackend:
    """ctypes wrappers around the compiled ``_native.c`` kernels."""

    name = "native"
    compiled = True

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        i64 = ctypes.c_int64
        ptr = ctypes.c_void_p
        lib.repro_popcount_rows.argtypes = [ptr, i64, i64, ptr]
        lib.repro_popcount_rows.restype = None
        lib.repro_intersect_counts.argtypes = [ptr, i64, i64, ptr, ptr]
        lib.repro_intersect_counts.restype = None
        lib.repro_waste_matrix.argtypes = [ptr, i64, i64, ptr, ptr]
        lib.repro_waste_matrix.restype = None
        lib.repro_group_mass.argtypes = [ptr, i64, ptr, ptr, ptr]
        lib.repro_group_mass.restype = None
        lib.repro_join_score.argtypes = [ptr, i64, ptr, ptr, ptr, i64, ptr]
        lib.repro_join_score.restype = i64
        lib.repro_pairwise_fit.argtypes = [
            ptr, i64, i64, ptr, i64, ptr, ptr, ptr, ptr, ptr, ptr, ptr,
        ]
        lib.repro_pairwise_fit.restype = None

    # ------------------------------------------------------------------
    def popcount_rows(self, words: np.ndarray) -> np.ndarray:
        words = np.ascontiguousarray(words, dtype=np.uint64)
        m, w = words.shape
        out = np.empty(m, dtype=np.int64)
        self._lib.repro_popcount_rows(_ptr(words), m, w, _ptr(out))
        return out

    def intersect_counts(
        self, words: np.ndarray, row: np.ndarray
    ) -> np.ndarray:
        words = np.ascontiguousarray(words, dtype=np.uint64)
        row = np.ascontiguousarray(row, dtype=np.uint64)
        m, w = words.shape
        out = np.empty(m, dtype=np.int64)
        self._lib.repro_intersect_counts(
            _ptr(words), m, w, _ptr(row), _ptr(out)
        )
        return out

    def waste_matrix(
        self, packed: PackedBits, probs: np.ndarray
    ) -> np.ndarray:
        words = packed.words
        m, w = words.shape
        probs = np.ascontiguousarray(probs, dtype=np.float64)
        out = np.empty((m, m), dtype=np.float32)
        self._lib.repro_waste_matrix(_ptr(words), m, w, _ptr(probs), _ptr(out))
        return out

    def group_mass(
        self,
        covered: np.ndarray,
        cell_group_ext: np.ndarray,
        cell_pmf: np.ndarray,
        n_groups: int,
    ) -> np.ndarray:
        covered = np.ascontiguousarray(covered, dtype=np.int64)
        cell_group_ext = np.ascontiguousarray(cell_group_ext, dtype=np.int64)
        cell_pmf = np.ascontiguousarray(cell_pmf, dtype=np.float64)
        out = np.zeros(n_groups + 1, dtype=np.float64)
        self._lib.repro_group_mass(
            _ptr(covered),
            len(covered),
            _ptr(cell_group_ext),
            _ptr(cell_pmf),
            _ptr(out),
        )
        return out[:n_groups]

    def group_scorer(
        self,
        cell_group_ext: np.ndarray,
        cell_pmf: np.ndarray,
        group_mass: np.ndarray,
    ):
        """A bound join scorer: ``scorer(covered) -> (group, overlap)``.

        Per-event ctypes overhead is what dominates join scoring (the
        C gather loop itself is sub-microsecond), so everything stable
        across events — argument pointers and the overlap output buffer
        — is captured once here.  The covered cells are staged into a
        reused buffer: one numpy slice-assign is cheaper than extracting
        a fresh array's data pointer through ``.ctypes``.

        The returned overlap vector is reused between calls; consume it
        before scoring again.
        """
        fn = self._lib.repro_join_score
        ext = np.ascontiguousarray(cell_group_ext, dtype=np.int64)
        pmf = np.ascontiguousarray(cell_pmf, dtype=np.float64)
        mass = np.ascontiguousarray(group_mass, dtype=np.float64)
        n_groups = len(mass)
        out = np.zeros(n_groups + 1, dtype=np.float64)
        overlap = out[:n_groups]
        p_ext, p_pmf, p_mass, p_out = (
            _ptr(ext), _ptr(pmf), _ptr(mass), _ptr(out)
        )
        stage = np.empty(4096, dtype=np.int64)
        p_stage = _ptr(stage)

        def scorer(covered: np.ndarray):
            nonlocal stage, p_stage
            n = covered.shape[0]
            if n > stage.shape[0]:
                stage = np.empty(
                    max(n, 2 * stage.shape[0]), dtype=np.int64
                )
                p_stage = _ptr(stage)
            stage[:n] = covered
            group = fn(p_stage, n, p_ext, p_pmf, p_mass, n_groups, p_out)
            return group, overlap

        return scorer

    def pairwise_fit(self, packed: PackedBits, probs: np.ndarray, n_groups: int):
        words = np.ascontiguousarray(packed.words).copy()
        m, w = words.shape
        probs = np.array(probs, dtype=np.float64)
        dist = np.empty((m, m), dtype=np.float32)
        sizes = np.empty(m, dtype=np.float64)
        parent = np.empty(m, dtype=np.int64)
        active = np.empty(m, dtype=np.uint8)
        nn_idx = np.empty(m, dtype=np.int64)
        nn_dist = np.empty(m, dtype=np.float32)
        counters = np.zeros(2, dtype=np.int64)
        self._lib.repro_pairwise_fit(
            _ptr(words), m, w, _ptr(probs), int(n_groups),
            _ptr(dist), _ptr(sizes), _ptr(parent), _ptr(active),
            _ptr(nn_idx), _ptr(nn_dist), _ptr(counters),
        )
        return parent, int(counters[0]), int(counters[1])


def load_native_backend() -> Optional[NativeBackend]:
    """Compile (or reuse) the shared library; ``None`` when impossible."""
    lib = _build_library()
    if lib is None:
        return None
    return NativeBackend(lib)
