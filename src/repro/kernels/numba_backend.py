"""The optional numba-jitted kernel backend.

Importable only when :mod:`numba` is installed; :func:`load_numba_backend`
returns ``None`` otherwise and backend selection falls back.  The jitted
kernels mirror ``_native.c`` loop for loop — float32 rounding for the
initial waste matrix, float64 products cast once to float32 for merge
rows, sequential float64 accumulation for group masses — so all three
backends produce byte-identical results (numba's default ``fastmath=False``
keeps IEEE semantics and performs no FMA contraction).

Popcount uses the SWAR reduction: numba has no ``np.bitwise_count``
binding, and LLVM pattern-matches the SWAR form to a hardware ``popcnt``
anyway.  All uint64 constants are wrapped to keep numba's integer typing
from promoting through float64.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .bitset import PackedBits

__all__ = ["NumbaBackend", "load_numba_backend"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba
    from numba import njit
except ImportError:  # pragma: no cover
    numba = None
    njit = None


if njit is not None:  # pragma: no cover - exercised on the numba CI leg
    _M1 = np.uint64(0x5555555555555555)
    _M2 = np.uint64(0x3333333333333333)
    _M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    _H01 = np.uint64(0x0101010101010101)
    _S1 = np.uint64(1)
    _S2 = np.uint64(2)
    _S4 = np.uint64(4)
    _S56 = np.uint64(56)

    @njit(inline="always")
    def _popcount(x):
        x = x - ((x >> _S1) & _M1)
        x = (x & _M2) + ((x >> _S2) & _M2)
        x = (x + (x >> _S4)) & _M4
        return np.int64((x * _H01) >> _S56)

    @njit(inline="always")
    def _popcount_and(a, b, w):
        acc = np.int64(0)
        for k in range(w):
            acc += _popcount(a[k] & b[k])
        return acc

    @njit(cache=True)
    def _popcount_rows(words):
        m, w = words.shape
        out = np.empty(m, dtype=np.int64)
        for i in range(m):
            out[i] = _popcount_and(words[i], words[i], w)
        return out

    @njit(cache=True)
    def _intersect_counts(words, row):
        m, w = words.shape
        out = np.empty(m, dtype=np.int64)
        for i in range(m):
            out[i] = _popcount_and(words[i], row, w)
        return out

    @njit(cache=True)
    def _waste_matrix(words, probs):
        m, w = words.shape
        out = np.empty((m, m), dtype=np.float32)
        sizes = _popcount_rows(words)
        for i in range(m):
            szi = np.float32(sizes[i])
            pi = np.float32(probs[i])
            out[i, i] = np.float32(0.0)
            for j in range(i + 1, m):
                inter = np.float32(_popcount_and(words[i], words[j], w))
                szj = np.float32(sizes[j])
                pj = np.float32(probs[j])
                v = pi * (szj - inter) + pj * (szi - inter)
                out[i, j] = v
                out[j, i] = v
        return out

    @njit(cache=True)
    def _group_mass(covered, groups, pmf, n_buckets):
        out = np.zeros(n_buckets, dtype=np.float64)
        for t in range(len(covered)):
            cell = covered[t]
            out[groups[cell]] += pmf[cell]
        return out

    @njit(cache=True)
    def _join_score(covered, groups, pmf, group_mass, out):
        # mirrors _native.c repro_join_score: accumulate the overlap in
        # covered-cell order, then an ascending strict-< scan over the
        # positive-overlap groups (np.argmin's first-occurrence rule)
        n_buckets = out.shape[0]
        for g in range(n_buckets):
            out[g] = 0.0
        for t in range(len(covered)):
            cell = covered[t]
            out[groups[cell]] += pmf[cell]
        best = np.int64(-1)
        best_score = 0.0
        for g in range(n_buckets - 1):
            if out[g] > 0.0:
                score = group_mass[g] - 2.0 * out[g]
                if best < 0 or score < best_score:
                    best = g
                    best_score = score
        return best

    @njit(cache=True)
    def _pairwise_fit(words, probs, n_groups):
        m, w = words.shape
        inf = np.float32(np.inf)
        dist = np.empty((m, m), dtype=np.float32)
        sizes = np.empty(m, dtype=np.float64)
        parent = np.empty(m, dtype=np.int64)
        active = np.empty(m, dtype=np.uint8)
        nn_idx = np.empty(m, dtype=np.int64)
        nn_dist = np.empty(m, dtype=np.float32)

        for i in range(m):
            parent[i] = i
            active[i] = 1
            sizes[i] = float(_popcount_and(words[i], words[i], w))

        for i in range(m):
            szi = np.float32(sizes[i])
            pi = np.float32(probs[i])
            dist[i, i] = inf
            for j in range(i + 1, m):
                inter = np.float32(_popcount_and(words[i], words[j], w))
                v = pi * (np.float32(sizes[j]) - inter) + np.float32(
                    probs[j]
                ) * (szi - inter)
                dist[i, j] = v
                dist[j, i] = v

        for i in range(m):
            best = 0
            best_v = dist[i, 0]
            for t in range(1, m):
                if dist[i, t] < best_v:
                    best_v = dist[i, t]
                    best = t
            nn_idx[i] = best
            nn_dist[i] = best_v

        n_active = m
        n_merges = np.int64(0)
        n_evals = np.int64(0)

        # Inactive rows/columns are never read (scans skip them and fall
        # back to (index 0, +inf) exactly like a full-row argmin over
        # +inf-filled entries), so no O(m) column walks are needed —
        # same structure as _native.c, byte-identical to the numpy loop.
        while n_active > n_groups:
            i = 0
            best = nn_dist[0] if active[0] else inf
            for k in range(1, m):
                v = nn_dist[k] if active[k] else inf
                if v < best:
                    best = v
                    i = k
            j = nn_idx[i]

            for k in range(w):
                words[i, k] |= words[j, k]
            sizes[i] = float(_popcount_and(words[i], words[i], w))
            probs[i] += probs[j]
            active[j] = 0
            parent[j] = i
            n_active -= 1
            n_merges += 1

            n_others = n_active - 1
            n_evals += n_others
            if n_others > 0:
                pi = probs[i]
                szi = sizes[i]
                for k in range(m):
                    if active[k] == 0 or k == i:
                        continue
                    inter = float(_popcount_and(words[i], words[k], w))
                    a = pi * (sizes[k] - inter)
                    b = probs[k] * (szi - inter)
                    v = np.float32(a + b)
                    dist[i, k] = v
                    dist[k, i] = v

            nn_dist[j] = inf

            for k in range(m):
                if active[k] == 0:
                    continue
                if nn_idx[k] == i or nn_idx[k] == j:
                    best_t = 0
                    best_v = inf
                    for t in range(m):
                        if active[t] != 0 and t != k and dist[k, t] < best_v:
                            best_v = dist[k, t]
                            best_t = t
                    nn_idx[k] = best_t
                    nn_dist[k] = best_v

            if n_others > 0:
                for k in range(m):
                    if active[k] == 0 or k == i:
                        continue
                    c = dist[i, k]
                    if c < nn_dist[k] or (c == nn_dist[k] and i < nn_idx[k]):
                        nn_idx[k] = i
                        nn_dist[k] = c

        return parent, n_merges, n_evals


class NumbaBackend:  # pragma: no cover - exercised on the numba CI leg
    """Jitted kernels; same call surface as :class:`NativeBackend`."""

    name = "numba"
    compiled = True

    def popcount_rows(self, words: np.ndarray) -> np.ndarray:
        return _popcount_rows(np.ascontiguousarray(words, dtype=np.uint64))

    def intersect_counts(
        self, words: np.ndarray, row: np.ndarray
    ) -> np.ndarray:
        return _intersect_counts(
            np.ascontiguousarray(words, dtype=np.uint64),
            np.ascontiguousarray(row, dtype=np.uint64),
        )

    def waste_matrix(
        self, packed: PackedBits, probs: np.ndarray
    ) -> np.ndarray:
        return _waste_matrix(
            packed.words, np.ascontiguousarray(probs, dtype=np.float64)
        )

    def group_mass(
        self,
        covered: np.ndarray,
        cell_group_ext: np.ndarray,
        cell_pmf: np.ndarray,
        n_groups: int,
    ) -> np.ndarray:
        masses = _group_mass(
            np.ascontiguousarray(covered, dtype=np.int64),
            np.ascontiguousarray(cell_group_ext, dtype=np.int64),
            np.ascontiguousarray(cell_pmf, dtype=np.float64),
            n_groups + 1,
        )
        return masses[:n_groups]

    def group_scorer(
        self,
        cell_group_ext: np.ndarray,
        cell_pmf: np.ndarray,
        group_mass: np.ndarray,
    ):
        """A bound join scorer: ``scorer(covered) -> (group, overlap)``.

        The overlap output buffer is reused between calls; consume it
        before scoring again.
        """
        ext = np.ascontiguousarray(cell_group_ext, dtype=np.int64)
        pmf = np.ascontiguousarray(cell_pmf, dtype=np.float64)
        mass = np.ascontiguousarray(group_mass, dtype=np.float64)
        out = np.zeros(len(mass) + 1, dtype=np.float64)
        overlap = out[: len(mass)]

        def scorer(covered: np.ndarray):
            group = _join_score(
                np.ascontiguousarray(covered, dtype=np.int64),
                ext, pmf, mass, out,
            )
            return int(group), overlap

        return scorer

    def pairwise_fit(self, packed: PackedBits, probs: np.ndarray, n_groups: int):
        words = np.ascontiguousarray(packed.words).copy()
        probs = np.array(probs, dtype=np.float64)
        parent, n_merges, n_evals = _pairwise_fit(
            words, probs, int(n_groups)
        )
        return parent, int(n_merges), int(n_evals)


def load_numba_backend() -> Optional[NumbaBackend]:
    """The jitted backend, or ``None`` when numba is not installed."""
    if njit is None:
        return None
    return NumbaBackend()
