"""Packed-bitset membership representation.

A boolean membership matrix of shape ``(m, n_bits)`` is packed row-wise
into little-endian ``uint64`` words: column ``j`` lives in word
``j // 64`` at bit position ``j % 64``, and the tail word of a ragged
row (``n_bits`` not a multiple of 64) is zero-padded.  Set algebra on
membership vectors then reduces to word-wise bit operations plus
popcounts:

* ``|a ∩ b|``  — ``popcount(a & b)``
* ``|a ∪ b|``  — ``popcount(a | b)``
* ``|a Δ b|``  — ``popcount(a ^ b)``

which is what every expected-waste kernel is made of.  The functions in
this module are the backend-independent primitives (pure numpy, built on
``np.bitwise_count``); the dispatchable hot-path kernels live in
:mod:`repro.kernels.backends`.
"""

from __future__ import annotations

import sys
from typing import Sequence, Union

import numpy as np

__all__ = [
    "PackedBits",
    "words_for",
    "pack_rows",
    "unpack_rows",
    "popcount_rows",
    "popcount_words",
    "intersect_count_rows",
    "union_count_rows",
    "symmetric_difference_count_rows",
    "or_reduce_rows",
]

WORD_BITS = 64


def words_for(n_bits: int) -> int:
    """Number of uint64 words needed to hold ``n_bits`` bits per row."""
    if n_bits < 0:
        raise ValueError("n_bits must be non-negative")
    return (int(n_bits) + WORD_BITS - 1) // WORD_BITS


def _as_words(words: np.ndarray) -> np.ndarray:
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError("packed words must be a 2-d (m, W) array")
    return words


class PackedBits:
    """An ``(m, W)`` uint64 word matrix plus its logical bit width.

    Rows are membership vectors; padding bits past ``n_bits`` in the
    last word are guaranteed zero by every constructor in this module,
    which is what makes popcount-based set cardinalities exact.
    """

    __slots__ = ("words", "n_bits")

    def __init__(self, words: np.ndarray, n_bits: int) -> None:
        words = _as_words(words)
        n_bits = int(n_bits)
        if words.shape[1] != words_for(n_bits):
            raise ValueError(
                f"{words.shape[1]} words cannot hold exactly "
                f"{n_bits} bits per row"
            )
        self.words = words
        self.n_bits = n_bits

    def __len__(self) -> int:
        return self.words.shape[0]

    @property
    def n_words(self) -> int:
        return self.words.shape[1]

    def take(self, indices: Union[np.ndarray, Sequence[int]]) -> "PackedBits":
        """A new :class:`PackedBits` of the selected rows (a copy)."""
        return PackedBits(self.words[np.asarray(indices)], self.n_bits)

    def unpack(self) -> np.ndarray:
        """The boolean ``(m, n_bits)`` matrix this packs."""
        return unpack_rows(self.words, self.n_bits)

    def copy(self) -> "PackedBits":
        return PackedBits(self.words.copy(), self.n_bits)


def pack_rows(membership: np.ndarray) -> PackedBits:
    """Pack a boolean ``(m, n_bits)`` matrix into uint64 words."""
    membership = np.asarray(membership, dtype=bool)
    if membership.ndim != 2:
        raise ValueError("membership must be a 2-d (m, n_bits) matrix")
    m, n_bits = membership.shape
    n_words = words_for(n_bits)
    packed8 = np.packbits(membership, axis=1, bitorder="little")
    pad = n_words * 8 - packed8.shape[1]
    if pad:
        packed8 = np.pad(packed8, ((0, 0), (0, pad)))
    words = packed8.view(np.uint64)
    if sys.byteorder == "big":  # pragma: no cover - exotic hosts
        words = words.byteswap()
    return PackedBits(np.ascontiguousarray(words), n_bits)


def unpack_rows(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`: uint64 words back to booleans."""
    words = _as_words(words)
    if words.shape[1] != words_for(n_bits):
        raise ValueError("word count does not match n_bits")
    m = words.shape[0]
    if n_bits == 0 or m == 0:
        return np.zeros((m, n_bits), dtype=bool)
    if sys.byteorder == "big":  # pragma: no cover - exotic hosts
        words = words.byteswap()
    as_bytes = words.reshape(m, -1).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little", count=n_bits)
    return bits.astype(bool)


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Per-word popcounts, widened to int64 (``np.bitwise_count`` is u8)."""
    return np.bitwise_count(words).astype(np.int64)


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """``|row|`` per row: total set bits in each packed row."""
    words = _as_words(words)
    return np.bitwise_count(words).sum(axis=1, dtype=np.int64)


def intersect_count_rows(words: np.ndarray, row: np.ndarray) -> np.ndarray:
    """``|rows[k] ∩ row|`` for every row (one AND + popcount sweep)."""
    words = _as_words(words)
    row = np.ascontiguousarray(row, dtype=np.uint64)
    return np.bitwise_count(words & row[None, :]).sum(axis=1, dtype=np.int64)


def union_count_rows(words: np.ndarray, row: np.ndarray) -> np.ndarray:
    """``|rows[k] ∪ row|`` for every row."""
    words = _as_words(words)
    row = np.ascontiguousarray(row, dtype=np.uint64)
    return np.bitwise_count(words | row[None, :]).sum(axis=1, dtype=np.int64)


def symmetric_difference_count_rows(
    words: np.ndarray, row: np.ndarray
) -> np.ndarray:
    """``|rows[k] Δ row|`` for every row (squared-Euclidean distance)."""
    words = _as_words(words)
    row = np.ascontiguousarray(row, dtype=np.uint64)
    return np.bitwise_count(words ^ row[None, :]).sum(axis=1, dtype=np.int64)


def or_reduce_rows(words: np.ndarray) -> np.ndarray:
    """Union of a stack of packed rows: one ``(W,)`` word vector."""
    words = _as_words(words)
    if words.shape[0] == 0:
        return np.zeros(words.shape[1], dtype=np.uint64)
    return np.bitwise_or.reduce(words, axis=0)
