"""Packed-bitset membership kernels (see docs/kernels.md).

Membership vectors — "which subscribers does this (hyper-)cell / group
touch" — are the data every clustering hot path crunches: pairwise
merging, expected-waste scoring and online join placement all reduce to
overlap/union/popcount algebra over them.  This package packs the
boolean matrices into uint64 words (:mod:`repro.kernels.bitset`) and
dispatches the algebra to one of three interchangeable, byte-identical
backends (:mod:`repro.kernels.backends`): pure numpy (always available),
a gcc-compiled native library loaded through ctypes, or numba-jitted
kernels when numba is installed.

Select with ``REPRO_KERNEL_BACKEND`` (``auto``/``numpy``/``native``/
``numba``), the CLI's ``--backend`` flag, or :func:`set_backend`.
"""

from .backends import (
    KERNEL_BACKEND_ENV,
    NumpyBackend,
    available_backends,
    backend_name,
    get_backend,
    set_backend,
)
from .bitset import (
    PackedBits,
    intersect_count_rows,
    or_reduce_rows,
    pack_rows,
    popcount_rows,
    popcount_words,
    symmetric_difference_count_rows,
    union_count_rows,
    unpack_rows,
    words_for,
)

__all__ = [
    "KERNEL_BACKEND_ENV",
    "NumpyBackend",
    "PackedBits",
    "available_backends",
    "backend_name",
    "get_backend",
    "intersect_count_rows",
    "or_reduce_rows",
    "pack_rows",
    "popcount_rows",
    "popcount_words",
    "set_backend",
    "symmetric_difference_count_rows",
    "union_count_rows",
    "unpack_rows",
    "words_for",
]
