/* Native membership kernels over packed uint64 bitsets.
 *
 * Compiled on demand by repro/kernels/native.py (gcc -O3 -shared
 * -ffp-contract=off) and loaded through ctypes.  Every float operation
 * replicates the numpy reference implementation's dtype and rounding
 * order exactly, so results are byte-identical to the pure-numpy
 * backend:
 *
 *   - the initial pairwise waste matrix is float32 with the op order
 *     round(p_i * (|s_j| - I)) + round(p_j * (|s_i| - I));
 *   - post-merge rows are computed in float64 (two products, one sum,
 *     each rounded once) and then cast to float32;
 *   - group-mass accumulation is sequential float64 adds in covered-cell
 *     order, matching np.bincount with weights.
 *
 * -ffp-contract=off matters: a fused multiply-add would skip the
 * intermediate rounding numpy performs and break bit-equality.
 */

#include <math.h>
#include <stdint.h>

#define EXPORT __attribute__((visibility("default")))

static inline int64_t popcount_and(
    const uint64_t *a, const uint64_t *b, int64_t w)
{
    int64_t acc = 0;
    for (int64_t k = 0; k < w; ++k) {
        acc += __builtin_popcountll(a[k] & b[k]);
    }
    return acc;
}

EXPORT void repro_popcount_rows(
    const uint64_t *words, int64_t m, int64_t w, int64_t *out)
{
    for (int64_t i = 0; i < m; ++i) {
        const uint64_t *row = words + i * w;
        int64_t acc = 0;
        for (int64_t k = 0; k < w; ++k) {
            acc += __builtin_popcountll(row[k]);
        }
        out[i] = acc;
    }
}

EXPORT void repro_intersect_counts(
    const uint64_t *words, int64_t m, int64_t w,
    const uint64_t *row, int64_t *out)
{
    for (int64_t i = 0; i < m; ++i) {
        out[i] = popcount_and(words + i * w, row, w);
    }
}

/* Full (m, m) float32 expected-waste matrix, diagonal zero.  Mirrors
 * clustering.distance.pairwise_waste_matrix: sizes and probabilities in
 * float32, W[i,j] = round(p_i*(sz_j - I)) + round(p_j*(sz_i - I)).
 * The matrix is exactly symmetric (float32 addition is commutative), so
 * each pair is computed once and written twice. */
EXPORT void repro_waste_matrix(
    const uint64_t *words, int64_t m, int64_t w,
    const double *probs, float *out)
{
    for (int64_t i = 0; i < m; ++i) {
        const uint64_t *wi = words + i * w;
        float szi = (float)popcount_and(wi, wi, w);
        float pi = (float)probs[i];
        out[i * m + i] = 0.0f;
        for (int64_t j = i + 1; j < m; ++j) {
            const uint64_t *wj = words + j * w;
            float inter = (float)popcount_and(wi, wj, w);
            float szj = (float)popcount_and(wj, wj, w);
            float pj = (float)probs[j];
            float v = pi * (szj - inter) + pj * (szi - inter);
            out[i * m + j] = v;
            out[j * m + i] = v;
        }
    }
}

/* Per-group publication mass of a set of covered grid cells.
 * ``groups`` is the sentinel-extended per-cell group map (unclustered
 * cells point at bucket ``n_groups``); ``out`` has n_groups + 1 entries
 * and must be zeroed by the caller.  Accumulation order matches
 * np.bincount(groups[covered], weights=pmf[covered]). */
EXPORT void repro_group_mass(
    const int64_t *covered, int64_t n,
    const int64_t *groups, const double *pmf, double *out)
{
    for (int64_t t = 0; t < n; ++t) {
        int64_t cell = covered[t];
        out[groups[cell]] += pmf[cell];
    }
}

/* Fused online join scoring: group-mass accumulation over the covered
 * cells (same semantics as repro_group_mass, but zeroing ``out``
 * itself) followed by the argmin of ``group_mass[g] - 2 * overlap[g]``
 * over the groups with positive overlap.  Returns the chosen group, or
 * -1 when no group overlaps.  The scan is ascending with a strict
 * less-than, matching np.argmin's first-occurrence tie-break over the
 * candidate subsequence; the score arithmetic (one product, one
 * subtraction, each rounded once in float64) matches the vectorised
 * numpy formulation — -ffp-contract=off keeps it fuse-free. */
EXPORT int64_t repro_join_score(
    const int64_t *covered, int64_t n,
    const int64_t *groups, const double *pmf,
    const double *group_mass, int64_t n_groups, double *out)
{
    for (int64_t g = 0; g <= n_groups; ++g) {
        out[g] = 0.0;
    }
    for (int64_t t = 0; t < n; ++t) {
        int64_t cell = covered[t];
        out[groups[cell]] += pmf[cell];
    }
    int64_t best = -1;
    double best_score = 0.0;
    for (int64_t g = 0; g < n_groups; ++g) {
        if (out[g] > 0.0) {
            double score = group_mass[g] - 2.0 * out[g];
            if (best < 0 || score < best_score) {
                best = g;
                best_score = score;
            }
        }
    }
    return best;
}

/* Fused agglomerative Pairwise Grouping fit: the entire merge loop of
 * PairwiseGroupingClustering._fit in one call — initial waste matrix,
 * NN-candidate selection, merge, row recompute, stale-row rescans and
 * the rewritten-column undercut check — merge-for-merge identical to
 * the python/numpy implementation, including argmin tie-breaking
 * (first occurrence, rows before columns).
 *
 * All buffers are allocated by the caller:
 *   words   (m, w) uint64, mutated in place (row unions)
 *   probs   (m,)  float64, mutated in place (row sums)
 *   dist    (m, m) float32 scratch
 *   sizes   (m,)  float64 scratch
 *   parent  (m,)  int64  out: merge forest (parent[j] = i after j -> i)
 *   active  (m,)  uint8  scratch
 *   nn_idx  (m,)  int64  scratch
 *   nn_dist (m,)  float32 scratch
 *   counters (2,) int64  out: [n_merges, n_distance_evals]
 */
EXPORT void repro_pairwise_fit(
    uint64_t *words, int64_t m, int64_t w,
    double *probs, int64_t n_groups,
    float *dist, double *sizes, int64_t *parent, uint8_t *active,
    int64_t *nn_idx, float *nn_dist, int64_t *counters)
{
    const float INF = INFINITY;
    int64_t i, j, k, t;

    for (i = 0; i < m; ++i) {
        parent[i] = i;
        active[i] = 1;
        sizes[i] = (double)popcount_and(words + i * w, words + i * w, w);
    }

    /* initial float32 waste matrix (same values as repro_waste_matrix,
     * but diag = +inf as the merge loop needs) */
    for (i = 0; i < m; ++i) {
        const uint64_t *wi = words + i * w;
        float szi = (float)sizes[i];
        float pi = (float)probs[i];
        dist[i * m + i] = INF;
        for (j = i + 1; j < m; ++j) {
            float inter = (float)popcount_and(wi, words + j * w, w);
            float v = pi * ((float)sizes[j] - inter)
                    + (float)probs[j] * (szi - inter);
            dist[i * m + j] = v;
            dist[j * m + i] = v;
        }
    }

    /* per-row nearest-neighbour candidates (first-occurrence argmin) */
    for (i = 0; i < m; ++i) {
        const float *row = dist + i * m;
        int64_t best = 0;
        float best_v = row[0];
        for (t = 1; t < m; ++t) {
            if (row[t] < best_v) {
                best_v = row[t];
                best = t;
            }
        }
        nn_idx[i] = best;
        nn_dist[i] = best_v;
    }

    int64_t n_active = m;
    int64_t n_merges = 0;
    int64_t n_evals = 0;

    /* Equivalence note: the numpy reference keeps every inactive row
     * and column filled with +inf, so its full-row argmins only ever
     * select inactive indices when the whole row is +inf (in which case
     * argmin returns index 0).  Here inactive entries are simply never
     * read: scans skip !active[t] and start from the same (index 0,
     * +inf) fallback, which selects identical indices.  Dropping the
     * O(m) column walks per merge (the matrix rows are 4·m bytes, so a
     * column walk is one cache miss per element) is where most of the
     * merge-loop time goes. */
    while (n_active > n_groups) {
        /* select the globally closest pair: argmin over active rows'
         * candidates, first occurrence on ties (inactive rows read as
         * +inf, exactly like np.where(active, nn_dist, inf)) */
        i = 0;
        float best = active[0] ? nn_dist[0] : INF;
        for (k = 1; k < m; ++k) {
            float v = active[k] ? nn_dist[k] : INF;
            if (v < best) {
                best = v;
                i = k;
            }
        }
        j = nn_idx[i];

        /* merge j into i */
        uint64_t *wi = words + i * w;
        const uint64_t *wj = words + j * w;
        for (k = 0; k < w; ++k) {
            wi[k] |= wj[k];
        }
        sizes[i] = (double)popcount_and(wi, wi, w);
        probs[i] += probs[j];
        active[j] = 0;
        parent[j] = i;
        n_active -= 1;
        n_merges += 1;

        int64_t n_others = n_active - 1;
        n_evals += n_others;
        if (n_others > 0) {
            /* recompute row i against every other active group:
             * float64 products and sum (one rounding each), then one
             * cast to float32 — the numpy reference's op order.  Both
             * triangles are written so the matrix stays symmetric and
             * column i can later be read as row i. */
            double pi = probs[i];
            double szi = sizes[i];
            for (k = 0; k < m; ++k) {
                if (!active[k] || k == i) {
                    continue;
                }
                double inter =
                    (double)popcount_and(wi, words + k * w, w);
                double a = pi * (sizes[k] - inter);
                double b = probs[k] * (szi - inter);
                float v = (float)(a + b);
                dist[i * m + k] = v;
                dist[k * m + i] = v;
            }
        }

        nn_dist[j] = INF;

        /* rows whose candidate involved i or j are stale: rescan
         * (always includes row i itself, whose candidate was j) */
        for (k = 0; k < m; ++k) {
            if (!active[k]) {
                continue;
            }
            if (nn_idx[k] == i || nn_idx[k] == j) {
                const float *row = dist + k * m;
                int64_t best_t = 0;
                float best_v = INF;
                for (t = 0; t < m; ++t) {
                    if (active[t] && t != k && row[t] < best_v) {
                        best_v = row[t];
                        best_t = t;
                    }
                }
                /* n_others == 0 leaves row i logically all-inf; the
                 * (0, +inf) fallback matches np.argmin of an all-inf
                 * row */
                nn_idx[k] = best_t;
                nn_dist[k] = best_v;
            }
        }

        /* the rewritten column i may undercut other rows' candidates
         * (or tie with a smaller column index, which the row-major
         * argmin would prefer); column i of a symmetric matrix is
         * row i, which streams */
        if (n_others > 0) {
            const float *row_i = dist + i * m;
            for (k = 0; k < m; ++k) {
                if (!active[k] || k == i) {
                    continue;
                }
                float c = row_i[k];
                if (c < nn_dist[k]
                    || (c == nn_dist[k] && i < nn_idx[k])) {
                    nn_idx[k] = i;
                    nn_dist[k] = c;
                }
            }
        }
    }

    counters[0] = n_merges;
    counters[1] = n_evals;
}
