"""repro — reproduction of "Clustering Algorithms for Content-Based
Publication-Subscription Systems" (Riabov, Liu, Wolf, Yu, Zhang;
ICDCS 2002).

The package builds the full pipeline of the paper:

- :mod:`repro.geometry` — intervals, rectangles, the gridded event space;
- :mod:`repro.network` — graphs, transit-stub topologies (GT-ITM style),
  routing and the four delivery cost models;
- :mod:`repro.workload` — subscription and publication generators;
- :mod:`repro.grid` — membership vectors and hyper-cells (section 4.1);
- :mod:`repro.clustering` — K-means, Forgy, MST, Pairwise Grouping
  (exact/approximate) and No-Loss (sections 4.2-4.5);
- :mod:`repro.matching` — R-tree index and the event matchers
  (section 4.6);
- :mod:`repro.delivery` — plan execution and cost accounting;
- :mod:`repro.obs` — metrics registry, span tracing and run manifests
  (the observability layer every stage reports into);
- :mod:`repro.sim` — scenario builders and the table/figure runners.

Quickstart::

    from repro.sim import build_evaluation_scenario, ExperimentContext

    scenario = build_evaluation_scenario(modes=1, seed=0)
    ctx = ExperimentContext(scenario, n_events=100)
    result = ctx.run_grid_algorithm("forgy", n_groups=40, max_cells=1000)[0]
    print(f"improvement over unicast: {result.improvement:.1f}%")
"""

__version__ = "1.0.0"

from . import (
    broker,
    clustering,
    delivery,
    geometry,
    grid,
    matching,
    network,
    obs,
    overlay,
    persistence,
    sim,
    workload,
)

__all__ = [
    "broker",
    "clustering",
    "delivery",
    "geometry",
    "grid",
    "matching",
    "network",
    "obs",
    "overlay",
    "persistence",
    "sim",
    "workload",
    "__version__",
]
