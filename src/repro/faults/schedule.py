"""Deterministic, seeded fault schedules on a virtual clock.

A :class:`FaultSchedule` is an ordered list of :class:`FaultEvent`
records — node-down/node-up, link-down/link-up, subscriber join/leave —
each stamped with a virtual time.  Schedules are plain data: they
serialise to JSON, round-trip losslessly, and replaying the same
schedule over the same scenario is bit-for-bit reproducible, which is
what lets the chaos test suite pin exact degraded/lost counts.

:meth:`FaultSchedule.generate` draws a balanced random schedule from a
seed: every element that goes down comes back up within the horizon, so
a full replay always ends on the original topology (the precondition for
the post-recovery byte-identity property).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["FaultEvent", "FaultSchedule", "KINDS"]

KINDS = (
    "node_down",
    "node_up",
    "link_down",
    "link_up",
    "sub_leave",
    "sub_join",
)

_NODE_KINDS = ("node_down", "node_up", "sub_join")
_LINK_KINDS = ("link_down", "link_up")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault or churn event.

    ``node`` carries the target for node events and the placement node
    for ``sub_join``; ``link`` carries the ``(u, v)`` endpoints for link
    events; ``subscriber`` carries the victim index for ``sub_leave``
    (an index into the *currently live* subscriber list at replay time,
    taken modulo its length, so schedules stay valid under churn).
    """

    time: float
    kind: str
    node: int = -1
    link: Tuple[int, int] = ()
    subscriber: int = -1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}")
        if self.time < 0:
            raise ValueError("event time must be non-negative")
        if self.kind in _NODE_KINDS and self.node < 0:
            raise ValueError(f"{self.kind} requires a node target")
        if self.kind in _LINK_KINDS:
            if len(self.link) != 2 or self.link[0] == self.link[1]:
                raise ValueError(f"{self.kind} requires a (u, v) link")
            object.__setattr__(
                self, "link", (min(self.link), max(self.link))
            )
        if self.kind == "sub_leave" and self.subscriber < 0:
            raise ValueError("sub_leave requires a subscriber index")

    def as_dict(self) -> Dict:
        record: Dict = {"time": self.time, "kind": self.kind}
        if self.kind in _NODE_KINDS:
            record["node"] = self.node
        if self.kind in _LINK_KINDS:
            record["link"] = list(self.link)
        if self.kind == "sub_leave":
            record["subscriber"] = self.subscriber
        return record

    @classmethod
    def from_dict(cls, record: Dict) -> "FaultEvent":
        return cls(
            time=float(record["time"]),
            kind=str(record["kind"]),
            node=int(record.get("node", -1)),
            link=tuple(record.get("link", ())),
            subscriber=int(record.get("subscriber", -1)),
        )


class FaultSchedule:
    """A time-ordered, replayable sequence of fault events."""

    def __init__(
        self,
        events: Iterable[FaultEvent] = (),
        horizon: Optional[float] = None,
    ) -> None:
        self._events: List[FaultEvent] = sorted(
            events, key=lambda e: e.time
        )
        if horizon is None:
            horizon = self._events[-1].time if self._events else 0.0
        if self._events and horizon < self._events[-1].time:
            raise ValueError("horizon earlier than the last event")
        self.horizon = float(horizon)

    # ------------------------------------------------------------------
    @property
    def events(self) -> List[FaultEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def counts(self) -> Dict[str, int]:
        """Events per kind (all kinds present, zero-filled)."""
        out = {kind: 0 for kind in KINDS}
        for event in self._events:
            out[event.kind] += 1
        return out

    # ------------------------------------------------------------------
    def as_dicts(self) -> List[Dict]:
        return [event.as_dict() for event in self._events]

    def to_json(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(
                {"horizon": self.horizon, "events": self.as_dicts()},
                handle,
                indent=2,
            )

    @classmethod
    def from_json(cls, path) -> "FaultSchedule":
        with open(path) as handle:
            payload = json.load(handle)
        return cls(
            events=[FaultEvent.from_dict(r) for r in payload["events"]],
            horizon=float(payload.get("horizon", 0.0) or 0.0) or None,
        )

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        topology,
        horizon: float,
        seed: int = 0,
        node_fraction: float = 0.0,
        n_link_faults: int = 0,
        n_churn: int = 0,
        n_subscribers: int = 0,
        protect: Sequence[int] = (),
        mean_downtime_fraction: float = 0.2,
    ) -> "FaultSchedule":
        """Draw a balanced random schedule from a seed.

        ``node_fraction`` of the topology's stub nodes fail at uniform
        times and recover within the horizon; ``n_link_faults`` random
        links do likewise; ``n_churn`` subscriber leave and join pairs
        model subscription dynamics (joins placed on random stub nodes).
        ``protect`` exempts nodes (e.g. a fixed publisher) from failure.
        Every down event has a matching up event before the horizon, so
        replay ends on the pristine topology.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []
        protected = set(int(p) for p in protect)
        candidates = [
            n for n in topology.stub_nodes() if n not in protected
        ]
        n_fail = int(round(node_fraction * topology.n_nodes))
        n_fail = min(n_fail, len(candidates))
        if n_fail:
            victims = rng.choice(len(candidates), size=n_fail, replace=False)
            for index in victims:
                node = int(candidates[int(index)])
                down, up = cls._down_up(
                    rng, horizon, mean_downtime_fraction
                )
                events.append(FaultEvent(down, "node_down", node=node))
                events.append(FaultEvent(up, "node_up", node=node))
        if n_link_faults:
            links = list(topology.graph.edges())
            picks = rng.choice(
                len(links), size=min(n_link_faults, len(links)),
                replace=False,
            )
            for index in picks:
                u, v, _ = links[int(index)]
                down, up = cls._down_up(
                    rng, horizon, mean_downtime_fraction
                )
                events.append(
                    FaultEvent(down, "link_down", link=(u, v))
                )
                events.append(FaultEvent(up, "link_up", link=(u, v)))
        for _ in range(n_churn):
            t_leave = float(rng.uniform(0.0, horizon))
            victim = int(rng.integers(0, max(1, n_subscribers)))
            events.append(
                FaultEvent(t_leave, "sub_leave", subscriber=victim)
            )
            t_join = float(rng.uniform(0.0, horizon))
            stubs = topology.stub_nodes()
            node = int(stubs[int(rng.integers(0, len(stubs)))])
            events.append(FaultEvent(t_join, "sub_join", node=node))
        return cls(events, horizon=horizon)

    @staticmethod
    def _down_up(
        rng: np.random.Generator, horizon: float, downtime_fraction: float
    ) -> Tuple[float, float]:
        down = float(rng.uniform(0.0, horizon * 0.6))
        downtime = float(
            horizon * downtime_fraction * rng.uniform(0.5, 1.5)
        )
        up = min(down + max(downtime, 1e-9), horizon * 0.95)
        return down, up
