"""Chaos replay: drive a broker through a fault schedule.

The :class:`ChaosRunner` merges a :class:`~repro.faults.FaultSchedule`
with a seeded publication stream on one virtual clock and replays them
in time order over a scenario's broker:

* fault events mutate the routing tables in place (selective
  shortest-path-tree invalidation, dispatcher memo invalidation) and
  feed the broker's debounced rebuild scheduler, weighted by how many
  subscribers each fault touches;
* publication events go through :meth:`ContentBroker.publish`, which
  degrades gracefully while faults are active (unicast fallback for
  broken groups, explicit lost accounting for unreachable subscribers).

At the end of the horizon every still-failed element is healed and the
broker performs one full recovery rebuild, so a balanced schedule leaves
the system byte-identical to a never-faulted run — the invariant the
property suite locks in.  The same runner with an empty schedule *is*
the no-fault baseline.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..broker import BrokerConfig, ContentBroker
from ..obs import (
    FlightRecorder,
    get_flight_recorder,
    get_tracer,
    set_flight_recorder,
)
from ..obs.slo import SloEngine
from ..workload import PublicationEvent
from .report import DegradationReport
from .schedule import FaultSchedule

__all__ = ["ChaosRunner"]


class ChaosRunner:
    """Replays a fault schedule plus a publication stream over a scenario."""

    def __init__(
        self,
        scenario,
        schedule: Optional[FaultSchedule] = None,
        config: Optional[BrokerConfig] = None,
        n_events: int = 100,
        seed: int = 0,
        flight: bool = False,
        slo: Optional[SloEngine] = None,
    ) -> None:
        self.scenario = scenario
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.config = config or BrokerConfig()
        self.n_events = n_events
        self.seed = seed
        #: record per-publication flight chains (cause chains for every
        #: degraded or lost publication land in the report)
        self.flight = flight
        self.slo = slo
        self.broker: Optional[ContentBroker] = None
        self._live_handles: List[int] = []
        self._join_rng = np.random.default_rng(seed + 2)

    @classmethod
    def from_params(
        cls,
        scenario_kwargs: Optional[dict] = None,
        events: Optional[Sequence[dict]] = None,
        horizon: float = 0.0,
        config_kwargs: Optional[dict] = None,
        n_events: int = 100,
        seed: int = 0,
        flight: bool = False,
        slo_spec: Optional[Sequence[dict]] = None,
    ) -> "ChaosRunner":
        """Build a runner from plain, picklable parameters.

        The parallel sweep engine ships these to worker processes
        instead of live objects: a chaos replay mutates its scenario's
        routing tables, so every worker must own a private scenario
        rebuilt from the same seed.  ``scenario_kwargs`` goes to
        :func:`repro.sim.build_preliminary_scenario`; ``events`` is the
        schedule as :meth:`FaultSchedule.as_dicts` records (``None`` or
        empty plus a horizon is the no-fault baseline); ``slo_spec`` is
        a list of objective dictionaries (see
        :func:`repro.obs.load_slo_spec`) — a private engine is built in
        the worker and its output travels back on the report.
        """
        from ..broker import BrokerConfig
        from ..obs.slo import load_slo_spec
        from ..sim.scenario import build_preliminary_scenario
        from .schedule import FaultEvent

        scenario = build_preliminary_scenario(**dict(scenario_kwargs or {}))
        schedule = FaultSchedule(
            events=[FaultEvent.from_dict(dict(r)) for r in events or ()],
            horizon=horizon or None,
        )
        config = BrokerConfig(**dict(config_kwargs or {}))
        slo = (
            SloEngine(load_slo_spec([dict(entry) for entry in slo_spec]))
            if slo_spec
            else None
        )
        return cls(
            scenario, schedule, config=config, n_events=n_events, seed=seed,
            flight=flight, slo=slo,
        )

    # ------------------------------------------------------------------
    def run(self) -> DegradationReport:
        """Replay the schedule; returns the degradation report."""
        with get_tracer().span(
            "chaos.run",
            scenario=self.scenario.name,
            n_faults=len(self.schedule),
            n_events=self.n_events,
        ):
            return self._run()

    def _run(self) -> DegradationReport:
        routing = self.scenario.routing
        broker = ContentBroker(
            routing,
            self.scenario.space,
            self.scenario.cell_pmf,
            config=self.config,
        )
        self.broker = broker
        subs = self.scenario.subscriptions
        nodes = subs.subscriber_nodes
        for subscriber, rectangle in enumerate(subs.rectangles()):
            handle = broker.subscribe(int(nodes[subscriber]), rectangle)
            self._live_handles.append(handle)
        broker.rebuild()

        timeline = self._timeline()
        down_nodes: set = set()
        down_links: set = set()
        report = DegradationReport(
            scenario=self.scenario.name,
            horizon=self.schedule.horizon,
            n_faults=self.schedule.counts(),
        )
        start = time.perf_counter()
        # per-publication causal tracing: a private recorder is swapped
        # in as the process default so the broker's flight stages land
        # here, scoped by publication index — the degradation report's
        # cause chains travel with it (picklable), so serial and
        # parallel replays stay byte-identical
        recorder = FlightRecorder(enabled=self.flight)
        previous_recorder = get_flight_recorder()
        if self.flight:
            set_flight_recorder(recorder)
        try:
            pub_index = 0
            for now, _, payload in timeline:
                if isinstance(payload, PublicationEvent):
                    if self.flight:
                        with recorder.event(pub_index, now):
                            receipt = broker.publish(
                                payload.point, payload.publisher, now=now
                            )
                    else:
                        receipt = broker.publish(
                            payload.point, payload.publisher, now=now
                        )
                    report.n_publications += 1
                    report.per_event_costs.append(float(receipt.cost))
                    if receipt.outcome == "delivered":
                        report.n_delivered += 1
                    elif receipt.outcome == "degraded":
                        report.n_degraded += 1
                    else:
                        report.n_lost += 1
                    if self.slo is not None:
                        self.slo.observe(
                            "lost_rate", now,
                            receipt.lost_deliveries
                            / max(1, receipt.n_interested),
                            stream="pub",
                        )
                    if self.flight and receipt.outcome != "delivered":
                        report.cause_chains.append(
                            {
                                "index": pub_index,
                                "time": now,
                                "outcome": receipt.outcome,
                                "down_nodes": sorted(down_nodes),
                                "down_links": sorted(
                                    list(link) for link in down_links
                                ),
                                "stages": recorder.take_chain(pub_index),
                            }
                        )
                    elif self.flight:
                        # delivered publications don't need a chain;
                        # drop theirs so the recorder stays bounded
                        recorder.take_chain(pub_index)
                    pub_index += 1
                else:
                    self._apply_fault(
                        broker, routing, payload, now, down_nodes, down_links
                    )
        finally:
            if self.flight:
                set_flight_recorder(previous_recorder)

        # end-of-horizon recovery: heal whatever the schedule left down,
        # then re-cluster once, cold, on the pristine topology
        end = self.schedule.horizon
        for node in sorted(down_nodes):
            routing.heal_node(node)
            broker.notify_change(end, weight=broker.subscribers_at(node))
        for u, v in sorted(down_links):
            routing.heal_link(u, v)
            broker.notify_change(end, weight=1)
        broker.rebuild(full=True)

        stats = broker.stats
        try:
            from ..kernels import backend_name

            report.kernel_backend = backend_name()
        except Exception:  # pragma: no cover - import cycle guard
            report.kernel_backend = "unknown"
        report.expected_deliveries = stats.expected_deliveries
        report.lost_deliveries = stats.lost_deliveries
        report.availability = stats.availability
        report.total_cost = sum(report.per_event_costs)
        report.unicast_fallback_cost = stats.unicast_fallback_cost
        report.n_degraded_groups = stats.n_degraded_groups
        report.n_rebuilds = stats.n_rebuilds
        report.n_full_rebuilds = stats.n_full_rebuilds
        report.total_rebuild_seconds = stats.total_rebuild_seconds
        if self.slo is not None:
            report.slo_breaches = self.slo.breach_dicts()
            report.slo_summary = self.slo.summary()
        # conservation check: the runner itself refuses to report a run
        # in which a publication escaped the accounting
        assert report.silently_lost == 0, (
            f"{report.silently_lost} publications were neither delivered, "
            "degraded nor counted lost"
        )
        _ = time.perf_counter() - start
        return report

    # ------------------------------------------------------------------
    def price(self, events: Sequence[PublicationEvent]) -> np.ndarray:
        """Plan costs of ``events`` on the broker's *current* state.

        Pure pricing — no stats are recorded, no rebuilds triggered.
        Used by the recovery property: after a balanced schedule plus a
        final rebuild, these costs must be byte-identical to a broker
        that never saw a fault.
        """
        if self.broker is None:
            raise RuntimeError("run() must complete before price()")
        matcher = self.broker._matcher
        dispatcher = self.broker._dispatcher
        publishers = [event.publisher for event in events]
        plans = [matcher.match(event.point) for event in events]
        return dispatcher.plan_costs(publishers, plans)

    def sample_publications(self) -> List[Tuple[float, PublicationEvent]]:
        """The seeded (time, publication) stream this runner replays."""
        rng = np.random.default_rng(self.seed + 1)
        events = self.scenario.publications.sample(rng, self.n_events)
        horizon = self.schedule.horizon or 1.0
        times = np.sort(rng.uniform(0.0, horizon, size=len(events)))
        return list(zip((float(t) for t in times), events))

    def _timeline(self) -> List[Tuple[float, int, object]]:
        """Faults and publications merged on the virtual clock.

        Ties break faults-first (rank 0 before rank 1): a failure and a
        publication at the same instant see the failure land first.
        """
        timeline: List[Tuple[float, int, object]] = []
        for event in self.schedule:
            timeline.append((event.time, 0, event))
        for when, publication in self.sample_publications():
            timeline.append((when, 1, publication))
        timeline.sort(key=lambda item: (item[0], item[1]))
        return timeline

    # ------------------------------------------------------------------
    def _apply_fault(
        self, broker, routing, event, now, down_nodes, down_links
    ) -> None:
        if event.kind == "node_down":
            if event.node in down_nodes:
                return
            weight = broker.subscribers_at(event.node)
            routing.fail_node(event.node)
            down_nodes.add(event.node)
            broker.notify_change(now, weight=max(1, weight))
        elif event.kind == "node_up":
            if event.node not in down_nodes:
                return
            routing.heal_node(event.node)
            down_nodes.discard(event.node)
            broker.notify_change(
                now, weight=max(1, broker.subscribers_at(event.node))
            )
        elif event.kind == "link_down":
            if event.link in down_links:
                return
            routing.fail_link(*event.link)
            down_links.add(event.link)
            broker.notify_change(now, weight=1)
        elif event.kind == "link_up":
            if event.link not in down_links:
                return
            routing.heal_link(*event.link)
            down_links.discard(event.link)
            broker.notify_change(now, weight=1)
        elif event.kind == "sub_leave":
            if not self._live_handles:
                return
            index = event.subscriber % len(self._live_handles)
            handle = self._live_handles.pop(index)
            broker.unsubscribe(handle)
            broker.notify_change(now, weight=1)
        elif event.kind == "sub_join":
            rectangle = self._random_rectangle()
            handle = broker.subscribe(event.node, rectangle)
            self._live_handles.append(handle)
            broker.notify_change(now, weight=1)

    def _random_rectangle(self):
        """A subscription rectangle drawn from the runner's join RNG."""
        from ..geometry import Rectangle

        rng = self._join_rng
        los, his = [], []
        for dim in self.scenario.space.dimensions:
            lo = float(rng.uniform(dim.lo - 1, dim.hi - 1))
            los.append(lo)
            his.append(lo + float(rng.uniform(1.0, (dim.hi - dim.lo) / 2 + 1)))
        return Rectangle.from_bounds(los, his)
