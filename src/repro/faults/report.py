"""Degradation reports: what a chaos run did to delivery quality.

The report aggregates the fault-aware outcome accounting
(delivered/degraded/lost publications, subscriber-level availability),
the cost of degrading (unicast fallback spend, extra cost over a
no-fault baseline), and the recovery machinery's activity (rebuild
count, full-vs-incremental split, rebuild latency).  It renders as an
aligned text table for the CLI and exports as a JSONL record compatible
with the :mod:`repro.obs` trace pipeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["DegradationReport"]


@dataclass
class DegradationReport:
    """Outcome of replaying a fault schedule over one scenario."""

    scenario: str
    horizon: float
    n_faults: Dict[str, int]
    # publication outcomes
    n_publications: int = 0
    n_delivered: int = 0
    n_degraded: int = 0
    n_lost: int = 0
    # subscriber-level delivery accounting
    expected_deliveries: int = 0
    lost_deliveries: int = 0
    availability: float = 1.0
    # costs
    total_cost: float = 0.0
    unicast_fallback_cost: float = 0.0
    n_degraded_groups: int = 0
    baseline_cost: Optional[float] = None
    # recovery machinery
    n_rebuilds: int = 0
    n_full_rebuilds: int = 0
    total_rebuild_seconds: float = 0.0
    # provenance (run manifests carry these too, but the JSONL report
    # must stand alone once split from its manifest)
    kernel_backend: str = ""
    workers: int = 1
    #: per-publication delivery costs, in publish order (byte-identity
    #: checks compare these arrays across runs)
    per_event_costs: List[float] = field(default_factory=list)
    #: flight-recorder cause chains of non-delivered publications, in
    #: publish order: {"index", "time", "outcome", "down_nodes",
    #: "down_links", "stages": [...]} — empty unless the runner recorded
    #: flight data
    cause_chains: List[Dict] = field(default_factory=list)
    #: SLO engine output (breach records + per-objective summary rows);
    #: empty unless the runner evaluated objectives.  Lives on the
    #: report so it crosses the worker-process boundary with it.
    slo_breaches: List[Dict] = field(default_factory=list)
    slo_summary: List[Dict] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def silently_lost(self) -> int:
        """Deliveries unaccounted for — must be zero by construction."""
        return self.n_publications - (
            self.n_delivered + self.n_degraded + self.n_lost
        )

    @property
    def extra_cost(self) -> Optional[float]:
        """Cost paid beyond the no-fault baseline (None without one)."""
        if self.baseline_cost is None:
            return None
        return self.total_cost - self.baseline_cost

    @property
    def mean_rebuild_seconds(self) -> float:
        if self.n_rebuilds == 0:
            return 0.0
        return self.total_rebuild_seconds / self.n_rebuilds

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict:
        return {
            "scenario": self.scenario,
            "horizon": self.horizon,
            "n_faults": dict(self.n_faults),
            "n_publications": self.n_publications,
            "n_delivered": self.n_delivered,
            "n_degraded": self.n_degraded,
            "n_lost": self.n_lost,
            "silently_lost": self.silently_lost,
            "expected_deliveries": self.expected_deliveries,
            "lost_deliveries": self.lost_deliveries,
            "availability": self.availability,
            "total_cost": self.total_cost,
            "unicast_fallback_cost": self.unicast_fallback_cost,
            "n_degraded_groups": self.n_degraded_groups,
            "baseline_cost": self.baseline_cost,
            "extra_cost": self.extra_cost,
            "n_rebuilds": self.n_rebuilds,
            "n_full_rebuilds": self.n_full_rebuilds,
            "total_rebuild_seconds": self.total_rebuild_seconds,
            "mean_rebuild_seconds": self.mean_rebuild_seconds,
            "kernel_backend": self.kernel_backend,
            "workers": self.workers,
            "n_cause_chains": len(self.cause_chains),
            "n_slo_breaches": len(self.slo_breaches),
        }

    def write_jsonl(self, path, manifest=None) -> int:
        """Append-friendly JSONL export: optional manifest record first,
        then the report, one record per publication cost, and one
        ``cause_chain`` record per non-delivered publication."""
        records: List[Dict] = []
        if manifest is not None:
            records.append({"kind": "manifest", **manifest.as_dict()})
        records.append({"kind": "degradation_report", **self.as_dict()})
        for index, cost in enumerate(self.per_event_costs):
            records.append(
                {"kind": "publication", "index": index, "cost": cost}
            )
        for chain in self.cause_chains:
            records.append({"kind": "cause_chain", **chain})
        for breach in self.slo_breaches:
            records.append({"kind": "slo_breach", **breach})
        with open(path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record))
                handle.write("\n")
        return len(records)

    def format(self) -> str:
        """Aligned text table for terminal output."""
        fault_text = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(self.n_faults.items())
            if count
        ) or "none"
        rows = [
            ("publications", f"{self.n_publications}"),
            ("  delivered", f"{self.n_delivered}"),
            ("  degraded", f"{self.n_degraded}"),
            ("  lost", f"{self.n_lost}"),
            ("  silently lost", f"{self.silently_lost}"),
            ("expected deliveries", f"{self.expected_deliveries}"),
            ("lost deliveries", f"{self.lost_deliveries}"),
            ("availability", f"{100.0 * self.availability:.2f} %"),
            ("total cost", f"{self.total_cost:.1f}"),
            ("unicast fallback cost", f"{self.unicast_fallback_cost:.1f}"),
            ("degraded groups", f"{self.n_degraded_groups}"),
        ]
        if self.baseline_cost is not None:
            rows.append(("baseline cost", f"{self.baseline_cost:.1f}"))
            rows.append(("extra cost vs baseline", f"{self.extra_cost:+.1f}"))
        rows += [
            (
                "rebuilds",
                f"{self.n_rebuilds} ({self.n_full_rebuilds} full)",
            ),
            (
                "mean rebuild latency",
                f"{1000.0 * self.mean_rebuild_seconds:.1f} ms",
            ),
        ]
        width = max(len(label) for label, _ in rows)
        lines = [
            f"Degradation report — {self.scenario} "
            f"(horizon {self.horizon:g}, faults: {fault_text})"
        ]
        lines += [f"{label:<{width}}  {value}" for label, value in rows]
        return "\n".join(lines)
