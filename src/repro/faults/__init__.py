"""Fault injection: deterministic chaos schedules and recovery replay.

The subsystem the paper's static evaluation lacks: seeded node/link
failures and subscription churn on a virtual clock
(:class:`FaultSchedule`), replayed over any scenario by
:class:`ChaosRunner`, with the resulting delivery degradation and
recovery activity summarised in a :class:`DegradationReport`.
"""

from .chaos import ChaosRunner
from .healing import BackendRun, HealingComparison, compare_healing
from .report import DegradationReport
from .schedule import KINDS, FaultEvent, FaultSchedule

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "KINDS",
    "ChaosRunner",
    "DegradationReport",
    "BackendRun",
    "HealingComparison",
    "compare_healing",
]
