"""Healing-vs-recompute: overlay route healing against SPT recompute.

The dense backend recovers from topology faults by *recomputing*: every
fault invalidates the affected cached shortest-path trees and the next
publication pays a fresh Dijkstra per touched source
(``routing_invalidations_total`` counts the dropped tables).  The
overlay backend *heals*: leaf sets are patched locally
(``overlay_leafset_repairs_total``) and cached rendezvous trees are
repaired in place — broken members re-grafted, dead forwarders pruned
(``overlay_tree_repairs_total{kind=...}``) — so recovery work scales
with the damage, not with the network.

:func:`compare_healing` replays **the same fault schedule and the same
seeded publication stream** once per backend and reports both the
delivery outcomes (availability, lost/degraded publications, cost) and
the recovery work each mechanism performed, as counter deltas captured
around each replay.  Because a chaos broker *re-clusters* between fault
windows, its group compositions drift and cached trees rarely live long
enough to be healed — so the comparison adds a **fixed-group replay**:
the initial clustering's groups are frozen, the fault schedule is
applied to the routing tables event by event, and every still-fully-
live group is re-priced after each topology change.  That isolates the
two recovery mechanisms (local tree repair vs shortest-path-tree
recompute) from the re-clustering noise.  Everything reported lives on
the virtual clock or is a deterministic count, so the rendered table is
byte-identical across runs — the CI chaos job diffs two invocations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import get_registry
from .report import DegradationReport

__all__ = [
    "BackendRun",
    "FixedGroupReplay",
    "HealingComparison",
    "compare_healing",
]

#: the two recovery mechanisms under comparison
BACKENDS = ("dense", "overlay")

#: counters whose deltas are captured around each replay
_WATCHED = (
    "routing_invalidations_total",
    "overlay_tree_builds_total",
    "overlay_tree_repairs_total",
    "overlay_leafset_repairs_total",
)


def _counter_state() -> Dict[Tuple[str, Tuple], float]:
    """Current values of the watched counters, per label combination."""
    registry = get_registry()
    state: Dict[Tuple[str, Tuple], float] = {}
    for name in _WATCHED:
        instrument = registry.get(name)
        if instrument is None:
            continue
        for sample in instrument.samples():
            key = (name, tuple(sorted(sample["labels"].items())))
            state[key] = float(sample["value"])
    return state


def _delta(
    before: Dict[Tuple[str, Tuple], float],
    after: Dict[Tuple[str, Tuple], float],
) -> Dict[str, float]:
    """Counter increments between two states, keyed by a flat name.

    Label combinations are flattened into ``name{k=v}`` strings so the
    record is JSON-friendly; zero deltas are dropped.
    """
    out: Dict[str, float] = {}
    for key, value in sorted(after.items()):
        grew = value - before.get(key, 0.0)
        if grew <= 0:
            continue
        name, labels = key
        if labels:
            rendered = ",".join(f"{k}={v}" for k, v in labels)
            out[f"{name}{{{rendered}}}"] = grew
        else:
            out[name] = grew
    return out


@dataclass
class BackendRun:
    """One backend's replay of the shared schedule + stream."""

    backend: str
    report: DegradationReport
    #: watched-counter increments attributable to this replay
    counters: Dict[str, float] = field(default_factory=dict)

    def counter(self, name: str) -> float:
        """Sum of a counter's deltas across its label combinations."""
        total = 0.0
        for key, value in self.counters.items():
            if key == name or key.startswith(name + "{"):
                total += value
        return total

    @property
    def recovery_work(self) -> float:
        """The backend's recovery effort in its own native unit.

        Dense: shortest-path tables dropped and recomputed.  Overlay:
        leaf-set entries patched plus tree members re-grafted or pruned
        — each a constant-size local repair.
        """
        if self.backend == "overlay":
            return self.counter("overlay_leafset_repairs_total") + self.counter(
                "overlay_tree_repairs_total"
            )
        return self.counter("routing_invalidations_total")

    def as_dict(self) -> Dict:
        return {
            "backend": self.backend,
            "recovery_work": self.recovery_work,
            "counters": dict(sorted(self.counters.items())),
            "report": self.report.as_dict(),
        }


@dataclass
class FixedGroupReplay:
    """One backend's re-pricing of frozen groups across the schedule.

    The fault schedule's topology events are applied to a private
    routing table in time order; after each one, every group whose
    members are all live and reachable is re-priced.  The re-pricing
    pattern is identical across backends (reachability is a topology
    fact), so the counter deltas compare recovery work like-for-like.
    """

    backend: str
    n_topology_faults: int = 0
    n_repricings: int = 0
    #: fraction of (group, fault) opportunities that stayed deliverable
    n_opportunities: int = 0
    total_cost: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)

    def counter(self, name: str) -> float:
        total = 0.0
        for key, value in self.counters.items():
            if key == name or key.startswith(name + "{"):
                total += value
        return total

    @property
    def recovery_work(self) -> float:
        if self.backend == "overlay":
            return self.counter("overlay_leafset_repairs_total") + self.counter(
                "overlay_tree_repairs_total"
            )
        return self.counter("routing_invalidations_total")

    @property
    def work_per_fault(self) -> float:
        if not self.n_topology_faults:
            return 0.0
        return self.recovery_work / self.n_topology_faults

    def as_dict(self) -> Dict:
        return {
            "backend": self.backend,
            "n_topology_faults": self.n_topology_faults,
            "n_repricings": self.n_repricings,
            "n_opportunities": self.n_opportunities,
            "total_cost": self.total_cost,
            "recovery_work": self.recovery_work,
            "work_per_fault": self.work_per_fault,
            "counters": dict(sorted(self.counters.items())),
        }


@dataclass
class HealingComparison:
    """Side-by-side recovery behaviour of the delivery backends."""

    runs: List[BackendRun]
    fixed: List[FixedGroupReplay] = field(default_factory=list)

    def run_for(self, backend: str) -> BackendRun:
        for run in self.runs:
            if run.backend == backend:
                return run
        raise KeyError(backend)

    def fixed_for(self, backend: str) -> FixedGroupReplay:
        for replay in self.fixed:
            if replay.backend == backend:
                return replay
        raise KeyError(backend)

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Aligned comparison table; deterministic across invocations."""
        names = [run.backend for run in self.runs]
        rows: List[Tuple[str, List[str]]] = []

        def row(label: str, values: List) -> None:
            rows.append((label, [str(v) for v in values]))

        reports = [run.report for run in self.runs]
        row("publications", [r.n_publications for r in reports])
        row("delivered", [r.n_delivered for r in reports])
        row("degraded", [r.n_degraded for r in reports])
        row("lost", [r.n_lost for r in reports])
        row("lost deliveries", [r.lost_deliveries for r in reports])
        row("availability", [f"{r.availability:.9f}" for r in reports])
        row("total cost", [f"{r.total_cost:.6f}" for r in reports])
        row(
            "unicast fallback cost",
            [f"{r.unicast_fallback_cost:.6f}" for r in reports],
        )
        row("rebuilds", [r.n_rebuilds for r in reports])
        row("full rebuilds", [r.n_full_rebuilds for r in reports])
        row(
            "spt invalidations",
            [
                f"{run.counter('routing_invalidations_total'):g}"
                for run in self.runs
            ],
        )
        for kind in ("reattach", "prune", "rebuild", "intact"):
            row(
                f"tree repairs ({kind})",
                [
                    f"{run.counters.get(f'overlay_tree_repairs_total{{kind={kind}}}', 0.0):g}"
                    for run in self.runs
                ],
            )
        row(
            "leafset repairs",
            [
                f"{run.counter('overlay_leafset_repairs_total'):g}"
                for run in self.runs
            ],
        )
        row(
            "recovery work units",
            [f"{run.recovery_work:g}" for run in self.runs],
        )
        if self.fixed:
            fixed = [self.fixed_for(run.backend) for run in self.runs]
            row("[fixed groups] repricings", [r.n_repricings for r in fixed])
            row(
                "[fixed groups] cost",
                [f"{r.total_cost:.6f}" for r in fixed],
            )
            row(
                "[fixed groups] spt invalidations",
                [
                    f"{r.counter('routing_invalidations_total'):g}"
                    for r in fixed
                ],
            )
            for kind in ("reattach", "prune", "rebuild", "intact"):
                row(
                    f"[fixed groups] tree repairs ({kind})",
                    [
                        f"{r.counters.get(f'overlay_tree_repairs_total{{kind={kind}}}', 0.0):g}"
                        for r in fixed
                    ],
                )
            row(
                "[fixed groups] leafset repairs",
                [
                    f"{r.counter('overlay_leafset_repairs_total'):g}"
                    for r in fixed
                ],
            )
            row(
                "[fixed groups] work per fault",
                [f"{r.work_per_fault:.6f}" for r in fixed],
            )

        label_w = max(len(label) for label, _ in rows)
        value_w = max(
            max(len(v) for v in values) for _, values in rows
        )
        value_w = max(value_w, max(len(n) for n in names))
        lines = [
            "Healing vs recompute "
            f"(scenario {reports[0].scenario}, horizon {reports[0].horizon:g})",
            " ".join(
                [" " * label_w] + [n.rjust(value_w) for n in names]
            ),
        ]
        for label, values in rows:
            lines.append(
                " ".join(
                    [label.ljust(label_w)]
                    + [v.rjust(value_w) for v in values]
                )
            )
        return "\n".join(lines) + "\n"

    def as_dict(self) -> Dict:
        return {
            "runs": [run.as_dict() for run in self.runs],
            "fixed_group_replays": [r.as_dict() for r in self.fixed],
        }

    def to_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def _frozen_groups(scenario, config_kwargs: dict) -> List:
    """The initial clustering's per-group node sets, scheme-independent.

    Built once under the dense scheme (group composition must be
    identical for every backend) and carried into each backend's replay
    as plain node arrays.
    """
    import numpy as np

    from ..broker import BrokerConfig, ContentBroker

    merged = dict(config_kwargs)
    merged["scheme"] = "dense"
    broker = ContentBroker(
        scenario.routing,
        scenario.space,
        scenario.cell_pmf,
        config=BrokerConfig(**merged),
    )
    subs = scenario.subscriptions
    nodes = subs.subscriber_nodes
    for subscriber, rectangle in enumerate(subs.rectangles()):
        broker.subscribe(int(nodes[subscriber]), rectangle)
    broker.rebuild()
    return [
        np.unique(nodes[members])
        for members in broker.clustering.group_member_lists()
        if len(members)
    ]


def _fixed_group_replay(
    scenario_kwargs: Optional[dict],
    events: Optional[Sequence[dict]],
    backend: str,
    groups: Sequence,
) -> FixedGroupReplay:
    """Apply the schedule's topology faults and re-price frozen groups.

    After every applied fault each group whose members are all live and
    reachable from the lowest live node is re-priced under ``backend``;
    the watched-counter deltas around the replay are the backend's
    recovery bill for keeping those groups deliverable.
    """
    import numpy as np

    from ..network.multicast import dense_multicast_cost
    from ..sim.scenario import build_preliminary_scenario
    from .schedule import FaultEvent

    scenario = build_preliminary_scenario(**dict(scenario_kwargs or {}))
    routing = scenario.routing
    n_nodes = scenario.topology.graph.n_nodes
    delivery = None
    if backend == "overlay":
        from ..dht import overlay_for

        delivery = overlay_for(routing)
    replay = FixedGroupReplay(backend=backend)
    before = _counter_state()
    down_nodes: set = set()
    down_links: set = set()
    for record in events or ():
        event = FaultEvent.from_dict(dict(record))
        if event.kind == "node_down":
            if event.node in down_nodes:
                continue
            routing.fail_node(event.node)
            down_nodes.add(event.node)
        elif event.kind == "node_up":
            if event.node not in down_nodes:
                continue
            routing.heal_node(event.node)
            down_nodes.discard(event.node)
        elif event.kind == "link_down":
            if event.link in down_links:
                continue
            routing.fail_link(*event.link)
            down_links.add(event.link)
        elif event.kind == "link_up":
            if event.link not in down_links:
                continue
            routing.heal_link(*event.link)
            down_links.discard(event.link)
        else:
            # subscription churn does not touch the topology
            continue
        replay.n_topology_faults += 1
        publisher = min(n for n in range(n_nodes) if n not in down_nodes)
        dist, _ = routing.shortest_paths(publisher).arrays()
        for nodes in groups:
            replay.n_opportunities += 1
            if any(int(m) in down_nodes for m in nodes):
                continue
            if not np.all(np.isfinite(dist[nodes])):
                continue
            replay.n_repricings += 1
            if backend == "overlay":
                replay.total_cost += delivery.group_cost(publisher, nodes)
            else:
                replay.total_cost += dense_multicast_cost(
                    routing, publisher, nodes
                )
    replay.counters = _delta(before, _counter_state())
    return replay


def compare_healing(
    scenario_kwargs: Optional[dict] = None,
    events: Optional[Sequence[dict]] = None,
    horizon: float = 0.0,
    config_kwargs: Optional[dict] = None,
    n_events: int = 100,
    seed: int = 0,
    backends: Sequence[str] = BACKENDS,
) -> HealingComparison:
    """Replay one schedule + stream once per backend and compare.

    Parameters mirror :meth:`ChaosRunner.from_params` — each backend
    builds a private scenario from the same seed (a replay mutates its
    routing tables), overriding only ``scheme`` in ``config_kwargs``.
    The per-backend outcome gauges land in the registry under a
    ``backend`` label so the comparison is scrapeable alongside the
    chaos run's own metrics.
    """
    from .chaos import ChaosRunner

    registry = get_registry()
    runs: List[BackendRun] = []
    for backend in backends:
        merged = dict(config_kwargs or {})
        merged["scheme"] = backend
        runner = ChaosRunner.from_params(
            scenario_kwargs=dict(scenario_kwargs or {}),
            events=events,
            horizon=horizon,
            config_kwargs=merged,
            n_events=n_events,
            seed=seed,
        )
        before = _counter_state()
        report = runner.run()
        run = BackendRun(
            backend=backend,
            report=report,
            counters=_delta(before, _counter_state()),
        )
        runs.append(run)
        registry.gauge(
            "healing_recovery_work",
            "recovery work units spent by one backend's chaos replay",
        ).set(run.recovery_work, backend=backend)
        registry.gauge(
            "healing_lost_deliveries",
            "subscriber deliveries lost under one backend's chaos replay",
        ).set(report.lost_deliveries, backend=backend)
    scenario = None
    fixed: List[FixedGroupReplay] = []
    if events:
        from ..sim.scenario import build_preliminary_scenario

        scenario = build_preliminary_scenario(**dict(scenario_kwargs or {}))
        groups = _frozen_groups(scenario, dict(config_kwargs or {}))
        for backend in backends:
            replay = _fixed_group_replay(
                scenario_kwargs, events, backend, groups
            )
            fixed.append(replay)
            registry.gauge(
                "healing_fixed_group_work",
                "recovery work of re-pricing frozen groups across the "
                "fault schedule",
            ).set(replay.recovery_work, backend=backend)
    return HealingComparison(runs=runs, fixed=fixed)
