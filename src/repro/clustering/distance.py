"""The expected-waste distance function (section 4.1).

For cells (or sets of cells) ``a`` and ``b`` with membership vectors
``s(a)``, ``s(b)`` and publication probabilities ``p_p(a)``, ``p_p(b)``,

    d(a, b) = p_p(a) * |s(b) \\ s(a)|  +  p_p(b) * |s(a) \\ s(b)|

is the expected number of messages sent to uninterested subscribers when
the two are combined into one multicast group: an event falling in ``a``
is wasted on the members contributed only by ``b`` and vice versa.  (The
formula as typeset in the paper pairs the factors the other way; the
prose definition — "the expected number of messages sent to subscribers
who are not interested in them" — forces this pairing.  See DESIGN.md.)

All kernels operate on boolean membership matrices and are fully
vectorised; the cross-membership counts ``|s(a) ∩ s(b)|`` come from one
matrix product — or, when a compiled kernel backend is active
(:mod:`repro.kernels`), from popcounts over the packed-bitset mirror of
the membership matrix.  The counts are exact small integers either way,
so both paths produce bit-identical float32 matrices.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..kernels import PackedBits, get_backend, pack_rows
from ..obs import get_registry

__all__ = [
    "expected_waste",
    "pairwise_waste_matrix",
    "waste_to_clusters",
    "squared_euclidean_matrix",
]


def expected_waste(
    membership_a: np.ndarray,
    prob_a: float,
    membership_b: np.ndarray,
    prob_b: float,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Expected waste between two individual (hyper-)cells or groups.

    With ``weights`` (aggregate column multiplicities) the set-difference
    cardinalities count subscriptions, not columns — the subscriber-level
    value, computed on aggregate-width vectors.
    """
    a = np.asarray(membership_a, dtype=bool)
    b = np.asarray(membership_b, dtype=bool)
    if a.shape != b.shape:
        raise ValueError("membership vectors must have equal length")
    if weights is not None:
        only_b = int(np.sum(weights[b & ~a]))
        only_a = int(np.sum(weights[a & ~b]))
    else:
        only_b = np.count_nonzero(b & ~a)
        only_a = np.count_nonzero(a & ~b)
    _count_evals(1)
    return float(prob_a) * only_b + float(prob_b) * only_a


def _intersections(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """``|s(a) ∩ s(b)|`` for every row/col pair, via a float32 matmul."""
    return rows.astype(np.float32) @ cols.astype(np.float32).T


#: lazily bound counter child, keyed to the registry it came from so a
#: worker installing a fresh process registry transparently rebinds
_eval_handle = None
_eval_registry = None


def _count_evals(n: int) -> None:
    """Record ``n`` pairwise distance evaluations in the registry.

    Every vectorised kernel below funnels through this, so the counter
    is the single source of truth for "how much distance work did a
    clustering fit do" regardless of algorithm.

    This sits inside the innermost distance loop of the scalar
    :func:`expected_waste` path, so the bound counter child is cached at
    module level instead of re-resolved through
    ``registry.counter(name, help)`` (a dict lookup plus label hashing)
    on every call.  ``MetricsRegistry.reset`` keeps children alive, so
    the handle survives resets; swapping the process registry
    (:func:`repro.obs.set_registry`) is detected by identity and rebinds.
    """
    global _eval_handle, _eval_registry
    registry = get_registry()
    handle = _eval_handle
    if handle is None or _eval_registry is not registry:
        handle = registry.counter(
            "clustering_distance_evals_total",
            "pairwise expected-waste distance evaluations",
        ).labels()
        _eval_handle = handle
        _eval_registry = registry
    handle.inc(n)


def pairwise_waste_matrix(
    membership: np.ndarray,
    probs: np.ndarray,
    packed: Optional[PackedBits] = None,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Full ``(m, m)`` expected-waste matrix between hyper-cells.

    ``W[i, j] = p_i * (|s_j| - |s_i ∩ s_j|) + p_j * (|s_i| - |s_i ∩ s_j|)``.
    The diagonal is zero.  Used by the MST and Pairwise Grouping
    algorithms.  Callers holding a packed-bitset mirror of ``membership``
    (:attr:`repro.grid.CellSet.packed`) pass it to let a compiled kernel
    backend skip the matmul; results are bit-identical either way.

    With ``weights`` (aggregate column multiplicities) the sizes and
    intersection counts are weighted sums — exact integers below the
    float32 precision limit, so they equal the subscriber-level popcounts
    bitwise and the matrix is byte-identical to the unaggregated one.
    The compiled backends only speak unweighted popcounts, so the
    weighted path always runs the (much narrower) matmul.
    """
    membership = np.asarray(membership, dtype=bool)
    probs32 = np.asarray(probs, dtype=np.float32)
    if membership.ndim != 2 or len(probs32) != len(membership):
        raise ValueError("membership must be (m, S) with matching probs")
    _count_evals(len(membership) * len(membership))
    if weights is None:
        backend = get_backend()
        if backend.compiled:
            if packed is None:
                packed = pack_rows(membership)
            return backend.waste_matrix(
                packed, np.asarray(probs, dtype=np.float64)
            )
        sizes = membership.sum(axis=1).astype(np.float32)
        inter = _intersections(membership, membership)
    else:
        w32 = np.asarray(weights, dtype=np.float32)
        m32 = membership.astype(np.float32)
        sizes = m32 @ w32
        inter = (m32 * w32) @ m32.T
    # float32 throughout: the matrix is O(m^2) and the float64 temporaries
    # dominate the cost for m in the thousands; probabilities and set
    # sizes are far from the float32 precision limits
    waste = sizes[None, :] - inter
    waste *= probs32[:, None]
    other = sizes[:, None] - inter
    other *= probs32[None, :]
    waste += other
    np.fill_diagonal(waste, 0.0)
    return waste


def waste_to_clusters(
    cell_membership: np.ndarray,
    cell_probs: np.ndarray,
    cluster_membership: np.ndarray,
    cluster_probs: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``(m, K)`` expected waste between every cell and every cluster.

    A cluster's membership vector is the union of its members'; its
    probability is the sum of theirs.  This is the assignment kernel of
    the K-means algorithms.  ``weights`` carries aggregate column
    multiplicities (see :func:`pairwise_waste_matrix`).
    """
    cell_membership = np.asarray(cell_membership, dtype=bool)
    cluster_membership = np.asarray(cluster_membership, dtype=bool)
    cell_probs = np.asarray(cell_probs, dtype=np.float64)
    cluster_probs = np.asarray(cluster_probs, dtype=np.float64)
    _count_evals(len(cell_membership) * len(cluster_membership))
    if weights is not None:
        # weighted counts are exact integers in float32, equal bitwise
        # to the subscriber-level popcounts (see pairwise_waste_matrix)
        w = np.asarray(weights, dtype=np.int64)
        w32 = w.astype(np.float32)
        cell_sizes = (
            cell_membership.astype(np.int64) @ w
        ).astype(np.float64)
        cluster_sizes = (
            cluster_membership.astype(np.int64) @ w
        ).astype(np.float64)
        inter = (
            (cell_membership.astype(np.float32) * w32)
            @ cluster_membership.astype(np.float32).T
        ).astype(np.float64)
    else:
        cell_sizes = cell_membership.sum(axis=1).astype(np.float64)
        cluster_sizes = cluster_membership.sum(axis=1).astype(np.float64)
        inter = _intersections(
            cell_membership, cluster_membership
        ).astype(np.float64)
    waste = cell_probs[:, None] * (cluster_sizes[None, :] - inter)
    waste += cluster_probs[None, :] * (cell_sizes[:, None] - inter)
    return waste


def squared_euclidean_matrix(membership: np.ndarray) -> np.ndarray:
    """Plain squared-Euclidean distances between membership vectors.

    ``d_e^2(a, b) = sum_i (s(a)_i XOR s(b)_i)``.  Provided for comparison
    with the probability-weighted expected-waste distance (the paper's
    section 4.1 derivation starts from this form).
    """
    membership = np.asarray(membership, dtype=bool)
    sizes = membership.sum(axis=1).astype(np.float64)
    inter = _intersections(membership, membership).astype(np.float64)
    return sizes[:, None] + sizes[None, :] - 2.0 * inter
