"""Common interfaces of the subscription clustering algorithms.

Every grid-based algorithm (K-means, Forgy, MST, Pairwise Grouping)
partitions the selected hyper-cells into at most ``K`` multicast groups.
The result object carries the per-group membership vectors (which *are*
the multicast groups: the subscribers whose interest touches any cell of
the group) and the cell-to-group map the grid matcher uses at event time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..grid import CellSet
from ..kernels import PackedBits, pack_rows
from ..obs import get_registry, get_tracer

__all__ = ["Clustering", "GridClusteringAlgorithm"]


@dataclass
class Clustering:
    """A partition of hyper-cells into multicast groups.

    Attributes
    ----------
    cells:
        The hyper-cells that were clustered.
    assignment:
        ``(m,)`` int array: hyper-cell -> group index in ``0..n_groups-1``.
    group_membership:
        ``(n_groups, n_subscribers)`` boolean matrix; row ``g`` is the
        union of the membership vectors of the group's hyper-cells —
        i.e. the subscriber composition of multicast group ``g``.
    group_probs:
        ``(n_groups,)`` publication probability mass of each group.
    """

    cells: CellSet
    assignment: np.ndarray
    group_membership: np.ndarray = field(init=False)
    group_probs: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        assignment = np.asarray(self.assignment, dtype=np.int64)
        if assignment.shape != (len(self.cells),):
            raise ValueError("assignment must map every hyper-cell")
        if len(assignment) and assignment.min() < 0:
            raise ValueError("every hyper-cell must belong to a group")
        self.assignment = assignment
        n_groups = int(assignment.max()) + 1 if len(assignment) else 0
        # union the member rows in packed form (one OR-reduce over
        # uint64 words per group) and unpack once; identical to
        # any(axis=0) over the boolean rows
        packed_cells = self.cells.packed
        group_words = np.zeros(
            (n_groups, packed_cells.n_words), dtype=np.uint64
        )
        probs = np.zeros(n_groups, dtype=np.float64)
        for g in range(n_groups):
            members = assignment == g
            if not members.any():
                raise ValueError(f"group {g} is empty")
            group_words[g] = np.bitwise_or.reduce(
                packed_cells.words[members], axis=0
            )
            probs[g] = self.cells.probs[members].sum()
        packed_groups = PackedBits(group_words, packed_cells.n_bits)
        self.group_membership = packed_groups.unpack()
        self.group_probs = probs
        self._member_lists: Optional[List[np.ndarray]] = None
        self._version = 0
        self._packed_groups: Optional[PackedBits] = packed_groups
        self._packed_groups_version = 0

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        return len(self.group_membership)

    def subscribers_of_group(self, group: int) -> np.ndarray:
        """Subscriber ids composing a multicast group."""
        return np.nonzero(self.group_membership[group])[0]

    def group_member_lists(self) -> List[np.ndarray]:
        """Per-group subscriber id arrays (sorted), computed once.

        The matchers build one delivery plan per event; sharing these
        arrays keeps plan assembly at a lookup instead of a
        ``np.nonzero`` per event, and lets the dispatcher's cost cache
        key repeated groups cheaply.
        """
        if self._member_lists is None:
            self._member_lists = [
                np.nonzero(self.group_membership[g])[0]
                for g in range(self.n_groups)
            ]
        return self._member_lists

    # ------------------------------------------------------------------
    # incremental membership maintenance (the online runtime's hooks)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Bumped on every incremental membership mutation.

        Consumers that cache derived state (the grid matcher's member
        lists and group sizes) compare against this to refresh lazily.
        """
        return self._version

    def ensure_subscribers(self, n_subscribers: int) -> None:
        """Grow the membership matrix to cover ``n_subscribers`` columns.

        New columns are all-False: a freshly joined subscriber belongs to
        no group until :meth:`add_member` places it.  Growth doubles the
        column capacity so a stream of joins costs amortised O(1) copies.
        """
        current = self.group_membership.shape[1]
        if n_subscribers <= current:
            return
        buf = getattr(self, "_membership_buf", None)
        if buf is None or buf.shape[1] < n_subscribers:
            capacity = max(n_subscribers, 2 * current)
            buf = np.zeros(
                (self.group_membership.shape[0], capacity), dtype=bool
            )
            buf[:, :current] = self.group_membership
            self._membership_buf = buf
        self.group_membership = buf[:, :n_subscribers]
        self._member_lists = None
        self._version += 1

    def add_member(self, group: int, subscriber: int) -> None:
        """Incrementally add a subscriber to one multicast group.

        This is the online join hook: the cell structure (``cells``,
        ``assignment``) is left untouched — only the group's membership
        vector gains the subscriber, exactly as a multicast substrate
        would process a group join.  ``total_expected_waste`` goes stale
        after incremental mutations; the online maintainer tracks the
        live waste instead.
        """
        if not 0 <= group < self.n_groups:
            raise ValueError(f"group {group} out of range")
        self.ensure_subscribers(subscriber + 1)
        self.group_membership[group, subscriber] = True
        self._member_lists = None
        self._version += 1

    def remove_member(self, subscriber: int) -> None:
        """Incrementally drop a subscriber from every multicast group."""
        if not 0 <= subscriber < self.group_membership.shape[1]:
            return
        self.group_membership[:, subscriber] = False
        self._member_lists = None
        self._version += 1

    def groups_of_subscriber(self, subscriber: int) -> np.ndarray:
        """Multicast groups whose membership vector includes a subscriber."""
        if not 0 <= subscriber < self.group_membership.shape[1]:
            return np.empty(0, dtype=np.int64)
        return np.nonzero(self.group_membership[:, subscriber])[0]

    def group_of_grid_cell(self, flat_cell: int) -> int:
        """Multicast group of a flat grid cell (-1 when unassigned)."""
        hypercell = int(self.cells.hypercell_of_cell[flat_cell])
        if hypercell < 0:
            return -1
        return int(self.assignment[hypercell])

    def groups_of_grid_cells(self, flat_cells: Sequence[int]) -> np.ndarray:
        """Vectorised :meth:`group_of_grid_cell` over many flat cells.

        ``-1`` entries (events outside the grid) and cells without a
        hyper-cell map to ``-1``.
        """
        flat = np.asarray(flat_cells, dtype=np.int64)
        groups = np.full(flat.shape, -1, dtype=np.int64)
        valid = flat >= 0
        if valid.any():
            hyper = self.cells.hypercell_of_cell[flat[valid]].astype(np.int64)
            assigned = np.where(
                hyper >= 0, self.assignment[np.maximum(hyper, 0)], -1
            )
            groups[valid] = assigned
        return groups

    def group_sizes(self) -> np.ndarray:
        """Number of subscribers in each group."""
        return self.group_membership.sum(axis=1)

    def _group_packed(self) -> PackedBits:
        """Packed group membership rows, refreshed on version bumps."""
        if (
            self._packed_groups is None
            or self._packed_groups_version != self._version
        ):
            self._packed_groups = pack_rows(self.group_membership)
            self._packed_groups_version = self._version
        return self._packed_groups

    # ------------------------------------------------------------------
    def total_expected_waste(self) -> float:
        """Objective value: expected wasted deliveries per published event.

        For hyper-cell ``a`` in group ``G`` the waste contribution is
        ``p_p(a) * |s(G) \\ s(a)|``; summing over all clustered cells gives
        the expectation (restricted to events landing in clustered cells).
        """
        weights = self.cells.weights
        if weights is not None:
            # aggregate columns: weighted cardinalities are exact int64
            # counts of the subscriptions behind each column, so the
            # value equals the subscriber-level computation bit for bit
            group_sizes = (
                self.group_membership.astype(np.int64) @ weights
            ).astype(np.float64)
            chosen_b = self.group_membership[self.assignment]
            per_cell = (
                (self.cells.membership & chosen_b).astype(np.int64)
                @ weights
            ).astype(np.float64)
            extra = group_sizes[self.assignment] - per_cell
            return float(np.sum(self.cells.probs * extra))
        group_sizes = self.group_membership.sum(axis=1).astype(np.float64)
        # |s(a) ∩ s(G)| via one AND + popcount over each cell's packed
        # row against its own group's packed row; the counts are exact
        # integers, so this matches the float32-matmul formulation bit
        # for bit
        cell_words = self.cells.packed.words
        chosen = self._group_packed().words[self.assignment]
        per_cell = (
            np.bitwise_count(cell_words & chosen)
            .sum(axis=1, dtype=np.int64)
            .astype(np.float64)
        )
        extra = group_sizes[self.assignment] - per_cell
        return float(np.sum(self.cells.probs * extra))


class GridClusteringAlgorithm(abc.ABC):
    """A grid-based subscription clustering algorithm (section 4)."""

    #: human-readable name used in reports and figures
    name: str = "abstract"

    @abc.abstractmethod
    def fit(
        self,
        cells: CellSet,
        n_groups: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Clustering:
        """Partition ``cells`` into at most ``n_groups`` multicast groups."""

    @staticmethod
    def _validate(cells: CellSet, n_groups: int) -> None:
        if n_groups < 1:
            raise ValueError("need at least one group")
        if len(cells) == 0:
            raise ValueError("cannot cluster an empty cell set")

    @staticmethod
    def _compact_assignment(raw: np.ndarray) -> np.ndarray:
        """Renumber group labels to a dense 0..n-1 range."""
        _, dense = np.unique(raw, return_inverse=True)
        return dense.reshape(-1)

    # ------------------------------------------------------------------
    # observability helpers shared by every algorithm's fit()
    # ------------------------------------------------------------------
    def _fit_span(self, cells: CellSet, n_groups: int):
        """Tracer span wrapping one fit (no-op while tracing is off)."""
        return get_tracer().span(
            "clustering.fit",
            algorithm=self.name,
            n_cells=len(cells),
            n_groups=n_groups,
        )

    def _record_fit(
        self,
        iterations: Optional[int] = None,
        merges: Optional[int] = None,
        distance_evals: Optional[int] = None,
    ) -> None:
        """Fold one fit's work counters into the registry."""
        registry = get_registry()
        registry.counter(
            "clustering_fit_total", "clustering fits performed"
        ).inc(algorithm=self.name)
        if iterations is not None:
            registry.counter(
                "clustering_iterations_total",
                "refinement iterations across fits",
            ).inc(iterations, algorithm=self.name)
        if merges is not None:
            registry.counter(
                "clustering_merges_total",
                "agglomerative merge steps across fits",
            ).inc(merges, algorithm=self.name)
        if distance_evals:
            registry.counter(
                "clustering_distance_evals_total",
                "pairwise expected-waste distance evaluations",
            ).inc(distance_evals)
