"""Outlier removal for cell clustering (the paper's future-work study).

Section 4.1 observes that "the more cells are given to clustering
algorithm, the worse the quality of solution becomes.  This justifies
the need for the implementation of outlier removal algorithms for
detection of cells that have rather unique combination of subscribers";
section 5.2 leaves "the study of outlier removal effects for future
work".  This module implements that study's missing piece.

A hyper-cell is an *outlier* when grouping it with anything else is
expensive relative to how often it receives events: its nearest-
neighbour expected-waste distance is large compared to its own
popularity.  Outliers are excluded from clustering (they fall back to
unicast at match time, exactly like cells dropped by the popularity
cut), which protects the groups from absorbing cells with unique
subscriber combinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..grid import CellSet
from .distance import pairwise_waste_matrix

__all__ = ["OutlierFilter", "nearest_neighbor_waste"]


def nearest_neighbor_waste(cells: CellSet) -> np.ndarray:
    """Distance from each hyper-cell to its closest other hyper-cell.

    Cells whose nearest neighbour is far (in expected-waste terms) have
    no cheap merge partner: any group containing them wastes messages.
    """
    if len(cells) < 2:
        return np.zeros(len(cells))
    distances = pairwise_waste_matrix(
        cells.membership, cells.probs, weights=cells.weights
    )
    np.fill_diagonal(distances, np.inf)
    return distances.min(axis=1)


@dataclass(frozen=True)
class OutlierFilter:
    """Drops the hyper-cells with the least affordable merge partners.

    Each cell's *badness* is its nearest-neighbour expected waste divided
    by its own popularity rating ``r(a) = p_p(a)·|s(a)|`` — how much a
    merge costs relative to the useful traffic the cell generates.  The
    filter discards the worst ``fraction`` of cells by badness (those
    with "rather unique combinations of subscribers", in the paper's
    words), provided their badness exceeds ``min_ratio``; a quantile
    criterion adapts to the workload where a fixed threshold would not.
    """

    fraction: float = 0.05
    min_ratio: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction < 1.0:
            raise ValueError("fraction must be in [0, 1)")
        if self.min_ratio < 0:
            raise ValueError("min_ratio must be non-negative")

    def split(self, cells: CellSet) -> Tuple[CellSet, np.ndarray]:
        """Return ``(kept_cells, outlier_indices)``.

        ``outlier_indices`` index into the *input* cell set.  When
        nothing qualifies, the input object is returned unchanged.
        """
        m = len(cells)
        if m < 3 or self.fraction == 0.0:
            return cells, np.empty(0, dtype=np.int64)
        nn = nearest_neighbor_waste(cells)
        popularity = cells.popularity
        badness = nn / np.maximum(popularity, 1e-15)
        budget = int(np.ceil(self.fraction * m))
        order = np.argsort(-badness, kind="stable")[:budget]
        candidates = order[badness[order] > self.min_ratio]
        if len(candidates) == 0:
            return cells, np.empty(0, dtype=np.int64)
        keep = np.setdiff1d(np.arange(m), candidates)
        return cells._subset(keep), np.sort(candidates)

    def apply(self, cells: CellSet) -> CellSet:
        """Convenience wrapper returning only the kept cells."""
        kept, _ = self.split(cells)
        return kept
