"""The No-Loss clustering algorithm (section 4.5).

Grid-based algorithms can waste messages: subscription rectangles are not
aligned to cell borders, so a multicast group formed from cells may
contain subscribers not interested in a particular event.  The No-Loss
algorithm instead forms groups from regions *aligned to the borders of
the interest rectangles themselves* — intersections of subscription
rectangles — so every subscriber in a matched group is guaranteed to be
interested.

Figure 4 of the paper is unreadable in the available scan; the algorithm
is reconstructed from the prose (see DESIGN.md): starting from the
subscription rectangles, repeatedly generate pairwise intersections,
score every candidate region ``s`` by its weight ``w(s) = p_p(s)·|u(s)|``
— the publication mass of the region times the number of subscribers
whose interest contains the *whole* region — and keep the ``n`` heaviest
candidates each iteration.  After the final iteration the ``K`` heaviest
regions become the multicast groups (group ``s`` consists of the
subscribers ``u(s)``), matching the run parameters reported in section 5
("5000 rectangles kept after intersection and 8 iterations").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import EventSpace, Rectangle
from ..obs import get_registry, get_tracer
from ..workload import SubscriptionSet

__all__ = ["NoLossResult", "NoLossAlgorithm", "LatticeBlockMass"]


class LatticeBlockMass:
    """O(1) publication mass of axis-aligned blocks of the lattice.

    Precomputes the N-dimensional prefix-sum of the flat cell pmf; the
    mass of any half-open rectangle is then an inclusion-exclusion over
    ``2^N`` prefix values.
    """

    def __init__(self, space: EventSpace, cell_pmf: np.ndarray) -> None:
        cell_pmf = np.asarray(cell_pmf, dtype=np.float64)
        if cell_pmf.shape != (space.n_cells,):
            raise ValueError("cell_pmf must cover every grid cell")
        self.space = space
        prefix = cell_pmf.reshape(space.shape).copy()
        for axis in range(prefix.ndim):
            np.cumsum(prefix, axis=axis, out=prefix)
        # pad with a zero hyper-plane at the origin of each axis so that
        # prefix[i0..] indexes "sum of cells < i" cleanly
        self._prefix = np.pad(prefix, [(1, 0)] * prefix.ndim)

    def rectangle_mass(self, rectangle: Rectangle) -> float:
        """Total pmf of lattice cells wholly inside the rectangle.

        No-loss regions must only count events *guaranteed* to interest
        every member, so a cell contributes only when the rectangle
        contains it entirely.
        """
        import math

        bounds = []
        for dim, side in zip(self.space.dimensions, rectangle.sides):
            if side.is_empty:
                return 0.0
            # cell c covers (lo+c-1, lo+c]; it is inside (a, b] iff
            # a <= lo+c-1 and lo+c <= b
            first = int(math.ceil(side.lo - dim.lo + 1.0 - 1e-9))
            last = int(math.floor(side.hi - dim.lo + 1e-9))
            first = max(first, 0)
            last = min(last, dim.n_cells - 1)
            if last < first:
                return 0.0
            bounds.append((first, last + 1))
        # inclusion-exclusion over the 2^N corners of the padded prefix
        # array: the all-upper corner is positive and each lower index
        # flips the sign
        n = len(bounds)
        total = 0.0
        for mask in range(1 << n):
            sign = 1
            idx = []
            for d in range(n):
                if mask >> d & 1:
                    idx.append(bounds[d][1])
                else:
                    idx.append(bounds[d][0])
                    sign = -sign
            total += sign * float(self._prefix[tuple(idx)])
        return max(total, 0.0)


@dataclass
class NoLossResult:
    """Output of the No-Loss algorithm.

    ``los``/``his`` are ``(n, N)`` bound matrices of the retained regions
    in *decreasing weight order*; ``weights[r]`` is ``w(s_r)`` and
    ``members[r]`` the subscriber ids of ``u(s_r)``.

    Several regions may share the same subscriber set ``u(s)`` — they
    then map to the *same* multicast group, since a multicast group is a
    set of subscribers, not a region.  The paper's budget of ``K``
    multicast groups therefore limits the number of distinct member
    sets: the retained region list is the longest weight-ordered prefix
    whose regions span at most ``K`` distinct sets.  ``group_of[r]`` is
    the group index of region ``r`` and ``group_members[g]`` the
    subscriber composition of group ``g``.
    """

    space: EventSpace
    los: np.ndarray
    his: np.ndarray
    weights: np.ndarray
    members: List[np.ndarray]
    group_of: np.ndarray
    group_members: List[np.ndarray]

    def __post_init__(self) -> None:
        n = len(self.weights)
        if not (len(self.los) == len(self.his) == n == len(self.members)):
            raise ValueError("inconsistent result arrays")
        if len(self.group_of) != n:
            raise ValueError("group_of must map every region")

    def __len__(self) -> int:
        return len(self.weights)

    @property
    def n_groups(self) -> int:
        """Number of distinct multicast groups."""
        return len(self.group_members)

    def rectangle(self, index: int) -> Rectangle:
        return Rectangle.from_bounds(self.los[index], self.his[index])

    def match(self, point: Sequence[float]) -> int:
        """Index of the heaviest region containing the point, or -1.

        Implements the selection rule of Figure 6: among the retained
        regions that contain the event, pick the one with the greatest
        density ``w``; regions are stored sorted by weight, so the first
        hit wins.
        """
        x = np.asarray(point, dtype=np.float64)
        mask = np.all((self.los < x) & (x <= self.his), axis=1)
        hits = np.nonzero(mask)[0]
        return int(hits[0]) if len(hits) else -1


class NoLossAlgorithm:
    """Iterative most-popular-intersection search."""

    name = "no-loss"

    def __init__(
        self,
        n_keep: int = 5000,
        iterations: int = 8,
        pair_budget: int = 20000,
    ) -> None:
        if n_keep < 1:
            raise ValueError("n_keep must be positive")
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        if pair_budget < 1:
            raise ValueError("pair_budget must be positive")
        self.n_keep = n_keep
        self.iterations = iterations
        self.pair_budget = pair_budget

    # ------------------------------------------------------------------
    def fit(
        self,
        subscriptions: SubscriptionSet,
        cell_pmf: np.ndarray,
        n_groups: int,
        rng: Optional[np.random.Generator] = None,
    ) -> NoLossResult:
        """Run the algorithm and return the weighted region list."""
        if n_groups < 1:
            raise ValueError("need at least one group")
        if rng is None:
            rng = np.random.default_rng()
        with get_tracer().span(
            "clustering.fit",
            algorithm="no-loss",
            n_groups=n_groups,
            n_keep=self.n_keep,
            iterations=self.iterations,
        ) as span:
            result = self._fit(subscriptions, cell_pmf, n_groups, rng)
            span.set("n_regions", len(result))
        registry = get_registry()
        registry.counter(
            "clustering_fit_total", "clustering fits performed"
        ).inc(algorithm="no-loss")
        registry.counter(
            "clustering_iterations_total",
            "refinement iterations across fits",
        ).inc(self.iterations, algorithm="no-loss")
        return result

    def _fit(
        self,
        subscriptions: SubscriptionSet,
        cell_pmf: np.ndarray,
        n_groups: int,
        rng: np.random.Generator,
    ) -> NoLossResult:
        space = subscriptions.space
        mass = LatticeBlockMass(space, cell_pmf)
        sub_los, sub_his = subscriptions.bounds()
        owners = np.array(
            [s.subscriber for s in subscriptions.subscriptions], dtype=np.int64
        )
        domain_los = np.array(
            [d.lo - 1.0 for d in space.dimensions], dtype=np.float64
        )
        domain_his = np.array(
            [float(d.hi) for d in space.dimensions], dtype=np.float64
        )

        # initial candidate set: the subscription rectangles clipped to
        # the lattice domain, de-duplicated
        los = np.maximum(sub_los, domain_los)
        his = np.minimum(sub_his, domain_his)
        los, his = self._dedupe(los, his)

        los, his, weights, members = self._score(
            los, his, sub_los, sub_his, owners, mass
        )
        for _ in range(self.iterations):
            new_los, new_his = self._intersections(los, his, rng)
            if len(new_los):
                los = np.concatenate([los, new_los])
                his = np.concatenate([his, new_his])
                los, his = self._dedupe(los, his)
                los, his, weights, members = self._score(
                    los, his, sub_los, sub_his, owners, mass
                )
            if len(los) > self.n_keep:
                los = los[: self.n_keep]
                his = his[: self.n_keep]
                weights = weights[: self.n_keep]
                members = members[: self.n_keep]

        return self._assemble(space, los, his, weights, members, n_groups)

    @staticmethod
    def _assemble(
        space: EventSpace,
        los: np.ndarray,
        his: np.ndarray,
        weights: np.ndarray,
        members: List[np.ndarray],
        n_groups: int,
    ) -> NoLossResult:
        """Select the ``n_groups`` heaviest distinct subscriber sets as
        multicast groups and keep every region mapping to one of them.

        Regions are scanned in decreasing weight order; the first
        ``n_groups`` distinct member sets become the groups.  Later
        regions whose member set is one of the selected groups remain
        usable by the matcher at no extra group cost (a multicast group
        is a subscriber set, not a region); regions with unselected sets
        are dropped."""
        group_index: Dict[bytes, int] = {}
        group_members: List[np.ndarray] = []
        group_of: List[int] = []
        kept: List[int] = []
        for r in range(len(weights)):
            key = members[r].astype(np.int64).tobytes()
            g = group_index.get(key)
            if g is None:
                if len(group_members) >= n_groups:
                    continue
                g = len(group_members)
                group_index[key] = g
                group_members.append(members[r])
            group_of.append(g)
            kept.append(r)
        kept_idx = np.asarray(kept, dtype=np.int64)
        return NoLossResult(
            space=space,
            los=los[kept_idx],
            his=his[kept_idx],
            weights=weights[kept_idx],
            members=[members[r] for r in kept],
            group_of=np.asarray(group_of, dtype=np.int64),
            group_members=group_members,
        )

    # ------------------------------------------------------------------
    def _intersections(
        self, los: np.ndarray, his: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pairwise intersections of the current candidates.

        All pairs when affordable, otherwise a random sample of
        ``pair_budget`` pairs — the algorithm only needs to *find* popular
        intersections, not enumerate them exhaustively.
        """
        n = len(los)
        if n < 2:
            return np.empty((0, los.shape[1])), np.empty((0, los.shape[1]))
        n_pairs = n * (n - 1) // 2
        if n_pairs <= self.pair_budget:
            ii, jj = np.triu_indices(n, k=1)
        else:
            ii = rng.integers(0, n, size=self.pair_budget)
            jj = rng.integers(0, n, size=self.pair_budget)
            valid = ii != jj
            ii, jj = ii[valid], jj[valid]
        new_los = np.maximum(los[ii], los[jj])
        new_his = np.minimum(his[ii], his[jj])
        nonempty = np.all(new_los < new_his, axis=1)
        return new_los[nonempty], new_his[nonempty]

    @staticmethod
    def _dedupe(
        los: np.ndarray, his: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        stacked = np.round(np.concatenate([los, his], axis=1), 9)
        _, keep = np.unique(stacked, axis=0, return_index=True)
        keep.sort()
        return los[keep], his[keep]

    def _score(
        self,
        los: np.ndarray,
        his: np.ndarray,
        sub_los: np.ndarray,
        sub_his: np.ndarray,
        owners: np.ndarray,
        mass: LatticeBlockMass,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[np.ndarray]]:
        """Weight every candidate and keep the heaviest, sorted by weight."""
        weights = np.empty(len(los), dtype=np.float64)
        members: List[np.ndarray] = []
        for r in range(len(los)):
            containing = np.all(
                (sub_los <= los[r]) & (his[r] <= sub_his), axis=1
            )
            u = np.unique(owners[containing])
            members.append(u)
            if len(u) == 0:
                weights[r] = 0.0
                continue
            rect = Rectangle.from_bounds(los[r], his[r])
            weights[r] = mass.rectangle_mass(rect) * len(u)
        order = np.argsort(-weights, kind="stable")
        positive = order[weights[order] > 0.0]
        if len(positive) == 0:
            raise ValueError(
                "no candidate region has positive weight; check that the "
                "publication pmf overlaps the subscriptions"
            )
        keep = positive[: self.n_keep]
        return (
            los[keep],
            his[keep],
            weights[keep],
            [members[i] for i in keep],
        )
