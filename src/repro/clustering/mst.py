"""Minimum-spanning-tree clustering (section 4.4).

Zahn-style MST clustering on the complete graph whose nodes are the
hyper-cells and whose edge lengths are the expected-waste distances
*between cells* (not between groups — that is the difference from
Pairwise Grouping, and why the edges can be sorted once up front, Kruskal
style).  Edges are processed in non-decreasing length order, merging
components, until exactly ``K`` components remain.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..grid import CellSet
from ..network import UnionFind
from .base import Clustering, GridClusteringAlgorithm
from .distance import pairwise_waste_matrix

__all__ = ["MSTClustering"]


class MSTClustering(GridClusteringAlgorithm):
    """Kruskal's algorithm stopped at ``K`` connected components."""

    name = "mst"

    def fit(
        self,
        cells: CellSet,
        n_groups: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Clustering:
        self._validate(cells, n_groups)
        m = len(cells)
        if n_groups >= m:
            self._record_fit(merges=0)
            return Clustering(cells, np.arange(m, dtype=np.int64))

        with self._fit_span(cells, n_groups) as span:
            distances = pairwise_waste_matrix(
                cells.membership, cells.probs, weights=cells.weights
            ).astype(np.float32)
            rows, cols = np.triu_indices(m, k=1)
            order = np.argsort(distances[rows, cols], kind="stable")

            components = UnionFind(m)
            edges_scanned = 0
            for edge in order:
                if components.components <= n_groups:
                    break
                edges_scanned += 1
                components.union(int(rows[edge]), int(cols[edge]))

            roots = np.fromiter(
                (components.find(i) for i in range(m)),
                dtype=np.int64,
                count=m,
            )
            span.set("edges_scanned", edges_scanned)
            self._record_fit(merges=m - components.components)
        return Clustering(cells, self._compact_assignment(roots))
