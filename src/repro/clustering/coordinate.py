"""Coordinate-based ("similar interest") clustering baseline.

Section 4.1 argues for membership vectors as feature vectors: "Using
coordinates in Omega for this purpose would lead to poorer solutions,
since our goal is to create groups based on *common* as opposed to
*similar* interest", citing the preference-clustering work of Wong,
Katz and McCanne [19].  This module implements exactly the rejected
alternative — K-means over cell-centre coordinates in the event space —
so the claim can be measured rather than taken on faith (see
``benchmarks/test_ablations.py``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..grid import CellSet
from .base import Clustering, GridClusteringAlgorithm

__all__ = ["CoordinateKMeansClustering"]


class CoordinateKMeansClustering(GridClusteringAlgorithm):
    """Lloyd's K-means on hyper-cell centroid coordinates.

    Each hyper-cell is represented by the mean of its grid cells'
    lattice coordinates, normalised per dimension; groups are formed by
    plain Euclidean K-means weighted by publication probability.  The
    result still plugs into the grid matcher — only the notion of
    similarity differs from the expected-waste algorithms.
    """

    name = "coordinate-kmeans"

    def __init__(self, max_iters: int = 100) -> None:
        if max_iters < 1:
            raise ValueError("max_iters must be positive")
        self.max_iters = max_iters
        self.n_iterations_: Optional[int] = None

    def fit(
        self,
        cells: CellSet,
        n_groups: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Clustering:
        self._validate(cells, n_groups)
        m = len(cells)
        if n_groups >= m:
            self.n_iterations_ = 0
            return Clustering(cells, np.arange(m, dtype=np.int64))
        if rng is None:
            rng = np.random.default_rng()

        features = self._features(cells)
        weights = np.maximum(cells.probs, 1e-15)

        # k-means++ style seeding biased by publication probability
        centroids = np.empty((n_groups, features.shape[1]))
        first = rng.choice(m, p=weights / weights.sum())
        centroids[0] = features[first]
        closest = np.full(m, np.inf)
        for g in range(1, n_groups):
            d = np.sum((features - centroids[g - 1]) ** 2, axis=1)
            closest = np.minimum(closest, d)
            scores = closest * weights
            total = scores.sum()
            if total <= 0:
                centroids[g] = features[int(rng.integers(0, m))]
                continue
            centroids[g] = features[rng.choice(m, p=scores / total)]

        assignment = np.zeros(m, dtype=np.int64)
        for iteration in range(1, self.max_iters + 1):
            distances = (
                np.sum(features**2, axis=1)[:, None]
                - 2.0 * features @ centroids.T
                + np.sum(centroids**2, axis=1)[None, :]
            )
            new_assignment = np.argmin(distances, axis=1)
            new_assignment = self._fix_empty(new_assignment, distances, n_groups)
            if np.array_equal(new_assignment, assignment) and iteration > 1:
                self.n_iterations_ = iteration
                break
            assignment = new_assignment
            for g in range(n_groups):
                members = assignment == g
                w = weights[members]
                centroids[g] = np.average(features[members], axis=0, weights=w)
        else:
            self.n_iterations_ = self.max_iters
        return Clustering(cells, assignment)

    @staticmethod
    def _features(cells: CellSet) -> np.ndarray:
        """Normalised centroid coordinates of each hyper-cell."""
        space = cells.space
        shape = np.asarray(space.shape, dtype=np.float64)
        features = np.empty((len(cells), space.n_dims))
        for h, ids in enumerate(cells.cell_ids):
            coords = np.array([space.cell_coords(int(c)) for c in ids], float)
            features[h] = coords.mean(axis=0)
        return features / shape  # scale every dimension into [0, 1)

    @staticmethod
    def _fix_empty(
        assignment: np.ndarray, distances: np.ndarray, n_groups: int
    ) -> np.ndarray:
        assignment = assignment.copy()
        counts = np.bincount(assignment, minlength=n_groups)
        empty = np.nonzero(counts == 0)[0]
        if len(empty) == 0:
            return assignment
        own = distances[np.arange(len(assignment)), assignment]
        order = np.argsort(-own, kind="stable")
        for g in empty:
            for cell in order:
                if counts[assignment[cell]] > 1:
                    counts[assignment[cell]] -= 1
                    assignment[cell] = g
                    counts[g] = 1
                    break
        return assignment
