"""Pairwise Grouping and its approximate variant (section 4.3).

Pairwise Grouping is bottom-up agglomeration: every hyper-cell starts in
its own group; while more than ``K`` groups remain, the two groups at
minimum expected-waste distance are merged (the merged group's membership
vector is the union, its probability the sum).  Distances are between
*groups*, so they must be recomputed after every merge — this is what
makes Pairwise Grouping slower than MST clustering on the same data.

The **approximate** variant replaces the exact minimum search with the
classic secretary rule: it inspects a fraction ``1/e`` of the candidate
pairs, remembers the best distance seen, then keeps scanning and stops at
the first pair that beats it (falling back to the remembered best).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..grid import CellSet
from ..kernels import get_backend
from .base import Clustering, GridClusteringAlgorithm
from .distance import _count_evals, pairwise_waste_matrix

__all__ = ["PairwiseGroupingClustering", "ApproximatePairwiseClustering"]


def _dense_labels(parent: np.ndarray) -> np.ndarray:
    """Dense group labels from a merge forest (path-compressed roots)."""
    roots = parent.copy()
    for idx in range(len(roots)):
        r = idx
        while parent[r] != r:
            r = parent[r]
        roots[idx] = r
    _, dense = np.unique(roots, return_inverse=True)
    return dense.reshape(-1)


class _AgglomerativeState:
    """Mutable merge state shared by the exact and approximate variants."""

    def __init__(self, cells: CellSet) -> None:
        m = len(cells)
        self.cells = cells
        self.active = np.ones(m, dtype=bool)
        # packed uint64 membership words, mutated in place on merges;
        # the active kernel backend supplies the AND+popcount sweeps.
        # Weighted (aggregate) columns keep boolean rows instead: the
        # popcount kernels only count bits, while the weighted counts
        # come from exact-integer float32 matmuls over the far narrower
        # aggregate axis — bitwise equal to the subscriber-level run.
        self.kernel = get_backend()
        self.weights = cells.weights
        self.probs = cells.probs.copy().astype(np.float64)
        if self.weights is not None:
            self.rows = cells.membership.copy()
            self.words = None
            self.sizes = (
                self.rows.astype(np.int64) @ self.weights
            ).astype(np.float64)
        else:
            self.rows = None
            self.words = cells.packed.words.copy()
            self.sizes = self.kernel.popcount_rows(self.words).astype(
                np.float64
            )
        self.parent = np.arange(m, dtype=np.int64)
        # full distance matrix with +inf masking for inactive/diagonal
        self.distances = pairwise_waste_matrix(
            cells.membership,
            cells.probs,
            packed=cells.packed if self.weights is None else None,
            weights=self.weights,
        ).astype(np.float32)
        np.fill_diagonal(self.distances, np.inf)
        self.n_active = m
        # work counters, accumulated locally and folded into the
        # registry once per fit (registry traffic stays off the merge
        # hot path)
        self.n_merges = 0
        self.n_distance_evals = 0

    def merge(self, i: int, j: int) -> None:
        """Absorb group ``j`` into group ``i`` and refresh distances."""
        if i == j or not (self.active[i] and self.active[j]):
            raise ValueError("merge requires two distinct active groups")
        self.probs[i] += self.probs[j]
        if self.weights is not None:
            self.rows[i] |= self.rows[j]
            self.sizes[i] = float(
                int(self.rows[i].astype(np.int64) @ self.weights)
            )
        else:
            self.words[i] |= self.words[j]
            self.sizes[i] = float(
                int(self.kernel.popcount_rows(self.words[i : i + 1])[0])
            )
        self.active[j] = False
        self.parent[j] = i
        self.n_active -= 1
        self.n_merges += 1
        self.distances[j, :] = np.inf
        self.distances[:, j] = np.inf
        # recompute group-i distances to every other active group
        others = np.nonzero(self.active)[0]
        others = others[others != i]
        self.n_distance_evals += len(others)
        if len(others) == 0:
            self.distances[i, :] = np.inf
            return
        # one AND + popcount sweep over the packed rows of the active
        # groups; intersection counts are exact integers, so the float
        # arithmetic below matches the old float32-matvec path bit for
        # bit
        if self.weights is not None:
            inter = (
                self.rows[others].astype(np.float32)
                @ (self.rows[i].astype(np.float32)
                   * self.weights.astype(np.float32))
            ).astype(np.float64)
        else:
            inter = self.kernel.intersect_counts(
                self.words[others], self.words[i]
            ).astype(np.float64)
        row = self.probs[i] * (self.sizes[others] - inter)
        row += self.probs[others] * (self.sizes[i] - inter)
        self.distances[i, :] = np.inf
        self.distances[:, i] = np.inf
        self.distances[i, others] = row.astype(np.float32)
        self.distances[others, i] = row.astype(np.float32)

    def assignment(self) -> np.ndarray:
        """Dense group labels after all merges (path-compressed roots)."""
        return _dense_labels(self.parent)


class PairwiseGroupingClustering(GridClusteringAlgorithm):
    """Exact Pairwise Grouping: merge the globally closest pair each step.

    The closest pair is found through maintained per-row nearest-neighbour
    candidates instead of a full-matrix ``argmin`` per merge.  Row ``k``
    carries ``(nn_idx[k], nn_dist[k])`` — its current row minimum — and a
    merge of ``(i, j)`` only invalidates the rows whose candidate pointed
    at ``i`` or ``j`` (their rows are rescanned lazily) plus a vectorised
    check of the rewritten column ``i``.  One merge therefore costs
    ``O(m + s·m)`` with ``s`` the handful of stale rows, dropping the
    total from the naive ``O(m^3)`` to about ``O(m^2 log m)`` while
    producing *merge-for-merge identical* clusterings: selection scans
    rows first and columns second exactly like the row-major
    ``argmin`` of the full matrix, including tie-breaking.
    """

    name = "pairs"

    def fit(
        self,
        cells: CellSet,
        n_groups: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Clustering:
        self._validate(cells, n_groups)
        m = len(cells)
        if n_groups >= m:
            self._record_fit(merges=0)
            return Clustering(cells, np.arange(m, dtype=np.int64))
        with self._fit_span(cells, n_groups) as span:
            clustering = self._fit(cells, n_groups)
            span.set("merges", m - n_groups)
        return clustering

    def _fit(self, cells: CellSet, n_groups: int) -> Clustering:
        m = len(cells)
        kernel = get_backend()
        # the fused kernels speak unweighted popcounts only; weighted
        # (aggregate) fits take the python loop over the narrow columns
        fused = None
        if cells.weights is None:
            fused = kernel.pairwise_fit(
                cells.packed,
                np.asarray(cells.probs, dtype=np.float64),
                n_groups,
            )
        if fused is not None:
            # a compiled backend ran the whole merge loop in one call
            # (merge-for-merge identical to the python loop below);
            # account the same distance-evaluation work: m^2 for the
            # initial matrix plus the per-merge row recomputes
            parent, n_merges, n_evals = fused
            _count_evals(m * m)
            self._record_fit(merges=n_merges, distance_evals=n_evals)
            return Clustering(cells, _dense_labels(parent))
        state = _AgglomerativeState(cells)
        distances = state.distances
        rows = np.arange(m)
        nn_idx = np.argmin(distances, axis=1).astype(np.int64)
        nn_dist = distances[rows, nn_idx].copy()
        while state.n_active > n_groups:
            candidates = np.where(state.active, nn_dist, np.inf)
            i = int(np.argmin(candidates))
            j = int(nn_idx[i])
            state.merge(i, j)
            nn_dist[j] = np.inf
            # rows whose candidate pair involved i or j are stale: column j
            # is gone and column i was rewritten, so rescan those rows
            # (this always includes row i itself, whose candidate was j)
            stale = np.nonzero(
                state.active & ((nn_idx == i) | (nn_idx == j))
            )[0]
            for k in stale:
                best = int(np.argmin(distances[k]))
                nn_idx[k] = best
                nn_dist[k] = distances[k, best]
            # the rewritten column i may now undercut other rows'
            # candidates (or tie with a smaller column index, which the
            # row-major argmin would prefer)
            col = distances[:, i]
            better = state.active & (
                (col < nn_dist) | ((col == nn_dist) & (i < nn_idx))
            )
            better[i] = False
            if better.any():
                nn_idx[better] = i
                nn_dist[better] = col[better]
        self._record_fit(
            merges=state.n_merges, distance_evals=state.n_distance_evals
        )
        return Clustering(cells, state.assignment())


class ApproximatePairwiseClustering(GridClusteringAlgorithm):
    """Pairwise Grouping with the secretary-rule approximate pair search.

    Each merge step draws candidate pairs of active groups uniformly at
    random: the first ``ceil(n_pairs / e)`` candidates establish a
    benchmark distance, and the scan stops at the first later candidate
    that beats the benchmark (or exhausts its inspection budget and falls
    back to the benchmark pair).  Faster than the exact search on large
    inputs, at some cost in solution quality.
    """

    name = "approx-pairs"

    def __init__(
        self, chunk_size: int = 32768, observe_cap: int = 32768
    ) -> None:
        """``observe_cap`` bounds the number of candidate pairs drawn in
        the observation phase of one merge step; the secretary fraction
        ``n_pairs / e`` is used when it is smaller."""
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if observe_cap < 1:
            raise ValueError("observe_cap must be positive")
        self.chunk_size = chunk_size
        self.observe_cap = observe_cap

    def fit(
        self,
        cells: CellSet,
        n_groups: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Clustering:
        self._validate(cells, n_groups)
        if rng is None:
            rng = np.random.default_rng()
        if n_groups >= len(cells):
            self._record_fit(merges=0)
            return Clustering(cells, np.arange(len(cells), dtype=np.int64))
        with self._fit_span(cells, n_groups) as span:
            state = _AgglomerativeState(cells)
            while state.n_active > n_groups:
                i, j = self._select_pair(state, rng)
                state.merge(i, j)
            span.set("merges", state.n_merges)
            self._record_fit(
                merges=state.n_merges,
                distance_evals=state.n_distance_evals,
            )
        return Clustering(cells, state.assignment())

    def _select_pair(
        self, state: _AgglomerativeState, rng: np.random.Generator
    ) -> Tuple[int, int]:
        active = np.nonzero(state.active)[0]
        a = len(active)
        n_pairs = a * (a - 1) // 2
        if n_pairs <= 2 * self.chunk_size:
            # few enough pairs: exact search is cheaper than sampling
            sub = state.distances[np.ix_(active, active)]
            flat = int(np.argmin(sub))
            i, j = divmod(flat, a)
            return int(active[i]), int(active[j])

        # observation phase: one vectorised draw of the secretary fraction
        # (bounded by observe_cap to keep per-step work flat)
        observe = min(max(1, math.ceil(n_pairs / math.e)), self.observe_cap)
        ii = active[rng.integers(0, a, size=observe)]
        jj = active[rng.integers(0, a, size=observe)]
        valid = ii != jj
        ii, jj = ii[valid], jj[valid]
        ds = state.distances[ii, jj]
        k = int(np.argmin(ds))
        best_d = float(ds[k])
        best_pair = (int(ii[k]), int(jj[k]))

        # selection phase: keep drawing and stop at the first pair that
        # beats the benchmark; give up after the remaining pair budget
        remaining = min(n_pairs - observe, 2 * self.chunk_size)
        while remaining > 0:
            size = min(self.chunk_size, remaining)
            remaining -= size
            ii = active[rng.integers(0, a, size=size)]
            jj = active[rng.integers(0, a, size=size)]
            valid = ii != jj
            ii, jj = ii[valid], jj[valid]
            if len(ii) == 0:
                continue
            ds = state.distances[ii, jj]
            k = int(np.argmin(ds))
            if ds[k] < best_d:
                return int(ii[k]), int(jj[k])
        return best_pair
