"""K-means and Forgy K-means subscription clustering (section 4.2).

Both variants start from the same initial partition: the ``K`` hyper-cells
with the highest popularity rating become the group centroids and every
other hyper-cell joins the closest group under the expected-waste
distance.  They differ in the update schedule:

* **K-means** (MacQueen) re-examines hyper-cells one at a time and updates
  the group membership vector *immediately* after every move.
* **Forgy K-means** reassigns all hyper-cells against frozen group
  vectors and updates all groups only at the end of the sweep.

A hyper-cell never leaves a group it is the last member of, so groups
stay non-empty (in the Forgy batch update, a group emptied by the sweep
is re-seeded with the cell that is farthest from its chosen group).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..grid import CellSet
from .base import Clustering, GridClusteringAlgorithm
from .distance import waste_to_clusters

__all__ = ["KMeansClustering", "ForgyKMeansClustering"]


class _KMeansBase(GridClusteringAlgorithm):
    """Shared initialisation of the two K-means variants."""

    def __init__(
        self,
        max_iters: int = 100,
        initial_assignment: Optional[np.ndarray] = None,
    ) -> None:
        """``initial_assignment`` warm-starts the iteration from an
        existing partition (hyper-cell -> group).  This is how the paper
        suggests accommodating subscription dynamics: re-run "a number of
        re-balancing iterations" from the current grouping instead of
        clustering from scratch (section 4.2)."""
        if max_iters < 1:
            raise ValueError("max_iters must be positive")
        self.max_iters = max_iters
        self.initial_assignment = initial_assignment
        #: iterations actually used by the last fit() call
        self.n_iterations_: Optional[int] = None

    def _initial_assignment(
        self, cells: CellSet, n_groups: int
    ) -> np.ndarray:
        """Seed groups with the most popular cells, assign the rest.

        When a warm-start partition was supplied, it is sanitised (dense
        group labels, empty groups dropped) and used instead.
        """
        if self.initial_assignment is not None:
            warm = np.asarray(self.initial_assignment, dtype=np.int64)
            if warm.shape != (len(cells),):
                raise ValueError(
                    "initial_assignment must map every hyper-cell"
                )
            if warm.min() < 0:
                raise ValueError("initial_assignment labels must be >= 0")
            _, dense = np.unique(warm, return_inverse=True)
            dense = dense.reshape(-1)
            if dense.max() + 1 > n_groups:
                raise ValueError(
                    "initial_assignment uses more groups than n_groups"
                )
            return dense
        m = len(cells)
        seeds = np.argsort(-cells.popularity, kind="stable")[:n_groups]
        assignment = np.full(m, -1, dtype=np.int64)
        assignment[seeds] = np.arange(n_groups)
        rest = np.nonzero(assignment < 0)[0]
        if len(rest):
            distances = waste_to_clusters(
                cells.membership[rest],
                cells.probs[rest],
                cells.membership[seeds],
                cells.probs[seeds],
                weights=cells.weights,
            )
            assignment[rest] = np.argmin(distances, axis=1)
        return assignment

    @staticmethod
    def _group_stats(
        cells: CellSet, assignment: np.ndarray, n_groups: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Union membership and summed probability of every group."""
        membership = np.zeros((n_groups, cells.n_subscribers), dtype=bool)
        probs = np.zeros(n_groups, dtype=np.float64)
        for g in range(n_groups):
            members = assignment == g
            if members.any():
                membership[g] = cells.membership[members].any(axis=0)
                probs[g] = cells.probs[members].sum()
        return membership, probs


class ForgyKMeansClustering(_KMeansBase):
    """Forgy's variant: batch reassignment against frozen group vectors."""

    name = "forgy"

    def fit(
        self,
        cells: CellSet,
        n_groups: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Clustering:
        self._validate(cells, n_groups)
        m = len(cells)
        if n_groups >= m:
            self.n_iterations_ = 0
            self._record_fit(iterations=0)
            return Clustering(cells, np.arange(m, dtype=np.int64))

        with self._fit_span(cells, n_groups) as span:
            assignment = self._initial_assignment(cells, n_groups)
            # a warm start may occupy fewer groups; iterate with exactly
            # the groups present so empty groups never enter the
            # distance kernel
            n_groups = int(assignment.max()) + 1
            for iteration in range(1, self.max_iters + 1):
                membership, probs = self._group_stats(
                    cells, assignment, n_groups
                )
                distances = waste_to_clusters(
                    cells.membership,
                    cells.probs,
                    membership,
                    probs,
                    weights=cells.weights,
                )
                new_assignment = np.argmin(distances, axis=1)
                new_assignment = self._fix_empty_groups(
                    new_assignment, distances, n_groups
                )
                if np.array_equal(new_assignment, assignment):
                    self.n_iterations_ = iteration
                    break
                assignment = new_assignment
            else:
                self.n_iterations_ = self.max_iters
            span.set("iterations", self.n_iterations_)
            self._record_fit(iterations=self.n_iterations_)
        return Clustering(cells, assignment)

    @staticmethod
    def _fix_empty_groups(
        assignment: np.ndarray, distances: np.ndarray, n_groups: int
    ) -> np.ndarray:
        """Re-seed groups emptied by the batch sweep.

        Each empty group is given the cell that currently fits its own
        group worst, taken from groups that can spare a member.
        """
        assignment = assignment.copy()
        counts = np.bincount(assignment, minlength=n_groups)
        empty = np.nonzero(counts == 0)[0]
        if len(empty) == 0:
            return assignment
        own_distance = distances[np.arange(len(assignment)), assignment]
        order = np.argsort(-own_distance, kind="stable")
        for g in empty:
            for cell in order:
                if counts[assignment[cell]] > 1:
                    counts[assignment[cell]] -= 1
                    assignment[cell] = g
                    counts[g] = 1
                    break
        return assignment


class KMeansClustering(_KMeansBase):
    """MacQueen's K-means: group vectors updated after every single move."""

    name = "kmeans"

    def fit(
        self,
        cells: CellSet,
        n_groups: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Clustering:
        self._validate(cells, n_groups)
        m = len(cells)
        if n_groups >= m:
            self.n_iterations_ = 0
            self._record_fit(iterations=0)
            return Clustering(cells, np.arange(m, dtype=np.int64))

        with self._fit_span(cells, n_groups) as span:
            assignment = self._initial_assignment(cells, n_groups)
            n_groups = int(assignment.max()) + 1

            # incremental group state: per-subscriber member counts (so
            # that removing a cell can shrink the union), boolean
            # membership, probability mass and cell counts
            counts = np.zeros(
                (n_groups, cells.n_subscribers), dtype=np.int32
            )
            probs = np.zeros(n_groups, dtype=np.float64)
            n_cells_in = np.zeros(n_groups, dtype=np.int64)
            cell_membership_int = cells.membership.astype(np.int32)
            # float32 rows are consumed by the inner-loop matmul below;
            # convert the whole matrix once instead of once per cell visit
            cell_membership_f32 = cells.membership.astype(np.float32)
            for g in range(n_groups):
                members = assignment == g
                counts[g] = cell_membership_int[members].sum(axis=0)
                probs[g] = cells.probs[members].sum()
                n_cells_in[g] = int(members.sum())
            membership = counts > 0
            membership_f32 = membership.astype(np.float32)
            # aggregate column weights: sizes and intersections below
            # count subscriptions (exact integers in float32), keeping
            # the iteration bitwise equal to the subscriber-level run
            weights = cells.weights
            if weights is not None:
                w32 = weights.astype(np.float32)
                cell_membership_f32 = cell_membership_f32 * w32
                group_sizes = (
                    membership.astype(np.int64) @ weights
                ).astype(np.float64)
            else:
                group_sizes = membership.sum(axis=1).astype(np.float64)

            cell_sizes = cells.sizes.astype(np.float64)
            # the inner loop evaluates one cell against every group; the
            # count is accumulated locally and recorded once per fit to
            # keep registry traffic off the hot path
            distance_evals = 0
            for iteration in range(1, self.max_iters + 1):
                moved = 0
                for cell in range(m):
                    current = int(assignment[cell])
                    if n_cells_in[current] <= 1:
                        continue  # last hyper-cell of group cannot move
                    s_cell = membership_f32 @ cell_membership_f32[cell]
                    distances = cells.probs[cell] * (group_sizes - s_cell)
                    distances += probs * (cell_sizes[cell] - s_cell)
                    distance_evals += n_groups
                    target = int(np.argmin(distances))
                    if target == current:
                        continue
                    moved += 1
                    assignment[cell] = target
                    row = cell_membership_int[cell]
                    counts[current] -= row
                    counts[target] += row
                    probs[current] -= cells.probs[cell]
                    probs[target] += cells.probs[cell]
                    n_cells_in[current] -= 1
                    n_cells_in[target] += 1
                    for g in (current, target):
                        membership[g] = counts[g] > 0
                        membership_f32[g] = membership[g]
                        if weights is not None:
                            group_sizes[g] = float(
                                membership[g].astype(np.int64) @ weights
                            )
                        else:
                            group_sizes[g] = float(membership[g].sum())
                if moved == 0:
                    self.n_iterations_ = iteration
                    break
            else:
                self.n_iterations_ = self.max_iters
            span.set("iterations", self.n_iterations_)
            self._record_fit(
                iterations=self.n_iterations_, distance_evals=distance_evals
            )
        return Clustering(cells, assignment)
