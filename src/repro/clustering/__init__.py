"""Subscription clustering algorithms (section 4 of the paper).

Grid-based family: K-means, Forgy K-means, MST and Pairwise Grouping
(exact and approximate) over hyper-cell membership vectors with the
expected-waste distance.  Rectangle family: the No-Loss algorithm.
"""

from .base import Clustering, GridClusteringAlgorithm
from .coordinate import CoordinateKMeansClustering
from .distance import (
    expected_waste,
    pairwise_waste_matrix,
    squared_euclidean_matrix,
    waste_to_clusters,
)
from .kmeans import ForgyKMeansClustering, KMeansClustering
from .mst import MSTClustering
from .noloss import LatticeBlockMass, NoLossAlgorithm, NoLossResult
from .outliers import OutlierFilter, nearest_neighbor_waste
from .pairwise import ApproximatePairwiseClustering, PairwiseGroupingClustering

__all__ = [
    "Clustering",
    "GridClusteringAlgorithm",
    "CoordinateKMeansClustering",
    "OutlierFilter",
    "nearest_neighbor_waste",
    "expected_waste",
    "pairwise_waste_matrix",
    "squared_euclidean_matrix",
    "waste_to_clusters",
    "ForgyKMeansClustering",
    "KMeansClustering",
    "MSTClustering",
    "LatticeBlockMass",
    "NoLossAlgorithm",
    "NoLossResult",
    "ApproximatePairwiseClustering",
    "PairwiseGroupingClustering",
]
