"""Event space definitions for the paper's two experiment families."""

from __future__ import annotations

from ..geometry import Dimension, EventSpace

__all__ = ["preliminary_space", "evaluation_space"]


def preliminary_space(n_stubs: int) -> EventSpace:
    """The 4-dimensional event space of the section 3 experiments.

    Dimension 0 is the *regional attribute*: the identifier of the stub
    (subnet) the publication originates from.  The other three attributes
    take integer values 0..20.
    """
    if n_stubs < 1:
        raise ValueError("need at least one stub")
    return EventSpace(
        [
            Dimension("region", 0, n_stubs - 1),
            Dimension("attr1", 0, 20),
            Dimension("attr2", 0, 20),
            Dimension("attr3", 0, 20),
        ]
    )


def evaluation_space() -> EventSpace:
    """The {bst, name, quote, volume} space of the section 5.1 model.

    ``bst`` (buy/sell/transaction) is encoded as 0/1/2; the other three
    attributes take integer values 0..20.
    """
    return EventSpace(
        [
            Dimension("bst", 0, 2),
            Dimension("name", 0, 20),
            Dimension("quote", 0, 20),
            Dimension("volume", 0, 20),
        ]
    )
