"""Dimension-parameterised synthetic workloads (the high-dimensional case).

Section 5.2 closes with "Cell-based clustering works well when the
dimensionality of the event space is not too high ...  We leave the
high-dimensional case for future study."  Studying that case needs a
workload whose structure is comparable across dimension counts; the
section 5.1 stock model is pinned to 4 attributes.  This generator
produces *community-structured* workloads in any dimension: subscriber
communities share a jittered base rectangle, and publications
concentrate around the community centres — the same
subscriptions-follow-messages assumption the paper's experiments make.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..geometry import Dimension, EventSpace, Interval, Rectangle
from ..network import Topology
from .distributions import GaussianMixture1D
from .publications import PublicationEvent
from .subscriptions import Subscription, SubscriptionSet

__all__ = ["SyntheticConfig", "SyntheticWorkload", "generate_synthetic"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Shape of the community workload."""

    n_communities: int = 4
    subscribers_per_community: int = 25
    domain_size: int = 8  # lattice values 0..domain_size-1 per dimension
    base_half_width: float = 1.5  # community rectangle half-width
    jitter: float = 0.75  # per-subscriber perturbation of the bounds
    wildcard_prob: float = 0.15  # chance a dimension is left unspecified
    peak_sigma: float = 1.2  # publication spread around centres

    def __post_init__(self) -> None:
        if self.n_communities < 1:
            raise ValueError("need at least one community")
        if self.subscribers_per_community < 1:
            raise ValueError("communities need at least one subscriber")
        if self.domain_size < 2:
            raise ValueError("domain must have at least two lattice values")
        if not 0.0 <= self.wildcard_prob < 1.0:
            raise ValueError("wildcard_prob must be in [0, 1)")


@dataclass
class SyntheticWorkload:
    """A generated workload: space, subscriptions and event density."""

    space: EventSpace
    subscriptions: SubscriptionSet
    cell_pmf: np.ndarray
    centers: np.ndarray  # (n_communities, n_dims) community centres
    config: SyntheticConfig
    topology: Topology

    def sample(
        self, rng: np.random.Generator, n: int
    ) -> List[PublicationEvent]:
        """Draw events from the community-peaked density."""
        stub_nodes = self.topology.stub_nodes()
        publishers = rng.choice(stub_nodes, size=n)
        which = rng.integers(0, len(self.centers), size=n)
        events = []
        for publisher, community in zip(publishers, which):
            raw = rng.normal(self.centers[community], self.config.peak_sigma)
            point = self.space.clip_point(tuple(raw))
            events.append(PublicationEvent(point=point, publisher=int(publisher)))
        return events


def generate_synthetic(
    topology: Topology,
    n_dims: int,
    config: Optional[SyntheticConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> SyntheticWorkload:
    """Build a community workload over an ``n_dims``-dimensional space."""
    if n_dims < 1:
        raise ValueError("need at least one dimension")
    config = config or SyntheticConfig()
    rng = rng or np.random.default_rng()

    space = EventSpace(
        [
            Dimension(f"attr{d}", 0, config.domain_size - 1)
            for d in range(n_dims)
        ]
    )
    lo, hi = 0.0, float(config.domain_size - 1)
    centers = rng.uniform(lo + 1.0, hi - 1.0, size=(config.n_communities, n_dims))

    stub_nodes = topology.stub_nodes()
    if not stub_nodes:
        raise ValueError("topology has no stub nodes")
    # each community is anchored at a random stub: its subscribers sit on
    # that stub's nodes (the paper's regional-concentration assumption)
    community_stubs = rng.choice(topology.n_stubs, size=config.n_communities)

    subscriptions: List[Subscription] = []
    subscriber = 0
    for community in range(config.n_communities):
        members = topology.stubs[int(community_stubs[community])]
        for _ in range(config.subscribers_per_community):
            node = int(members[int(rng.integers(0, len(members)))])
            sides = []
            for d in range(n_dims):
                if rng.random() < config.wildcard_prob:
                    sides.append(Interval.full())
                    continue
                center = centers[community, d] + rng.normal(0, config.jitter)
                half = config.base_half_width + abs(
                    rng.normal(0, config.jitter)
                )
                sides.append(Interval.make(center - half, center + half))
            subscriptions.append(
                Subscription(subscriber, node, Rectangle(tuple(sides)))
            )
            subscriber += 1
    subscription_set = SubscriptionSet(space, subscriptions)

    # publication density: an even mixture over the community centres,
    # independent per dimension given the community => exact cell pmf is
    # the average of per-community product pmfs
    pmf = np.zeros(space.n_cells, dtype=np.float64)
    for community in range(config.n_communities):
        per_dim = [
            GaussianMixture1D.single(
                float(centers[community, d]), config.peak_sigma
            ).lattice_pmf(space.dimensions[d])
            for d in range(n_dims)
        ]
        community_pmf = per_dim[0]
        for marginal in per_dim[1:]:
            community_pmf = np.multiply.outer(community_pmf, marginal)
        pmf += community_pmf.reshape(-1)
    pmf /= config.n_communities

    return SyntheticWorkload(
        space=space,
        subscriptions=subscription_set,
        cell_pmf=pmf,
        centers=centers,
        config=config,
        topology=topology,
    )
