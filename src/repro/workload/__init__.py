"""Workload models: subscription and publication generators (sections 3
and 5.1 of the paper), plus the distributions they are built from."""

from .decompose import MultiRangeSubscription, decompose, decompose_all
from .distributions import (
    GaussianMixture1D,
    IntervalDistribution,
    ParetoLength,
    UniformLattice,
    ZipfLike,
    normal_cdf,
)
from .publications import (
    MixturePublicationModel,
    PreliminaryPublicationModel,
    PublicationEvent,
    PublicationModel,
    four_mode_mixture,
    nine_mode_mixture,
    single_mode_mixture,
)
from .predicates import (
    Predicate,
    PredicateSubscription,
    PredicateSubscriptionSet,
    ball_predicate,
    rectangle_predicate,
    union_predicate,
)
from .spaces import evaluation_space, preliminary_space
from .synthetic import SyntheticConfig, SyntheticWorkload, generate_synthetic
from .trades import TradeStreamConfig, TradeStreamGenerator
from .subscriptions import (
    EvaluationSubscriptionModel,
    PreliminarySubscriptionModel,
    Subscription,
    SubscriptionSet,
)

__all__ = [
    "MultiRangeSubscription",
    "decompose",
    "decompose_all",
    "GaussianMixture1D",
    "IntervalDistribution",
    "ParetoLength",
    "UniformLattice",
    "ZipfLike",
    "normal_cdf",
    "MixturePublicationModel",
    "PreliminaryPublicationModel",
    "PublicationEvent",
    "PublicationModel",
    "four_mode_mixture",
    "nine_mode_mixture",
    "single_mode_mixture",
    "Predicate",
    "PredicateSubscription",
    "PredicateSubscriptionSet",
    "ball_predicate",
    "rectangle_predicate",
    "union_predicate",
    "evaluation_space",
    "preliminary_space",
    "TradeStreamConfig",
    "TradeStreamGenerator",
    "SyntheticConfig",
    "SyntheticWorkload",
    "generate_synthetic",
    "EvaluationSubscriptionModel",
    "PreliminarySubscriptionModel",
    "Subscription",
    "SubscriptionSet",
]
