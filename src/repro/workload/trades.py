"""A synthetic stock-trade event stream (future-work item 3).

The paper's discussion: "Evaluation of the algorithms with real-world
data would be helpful.  For example, stock trading data can be used to
simulate a stream of events coming into the system."  Real tick data is
not available offline, so this module builds the closest synthetic
equivalent: a *time-ordered, temporally correlated* stream of trades in
the section 5.1 event space ``{bst, name, quote, volume}``:

* stock popularity is Zipf-like — a few names trade constantly;
* each stock's price follows a mean-reverting random walk, so
  consecutive events for one stock are nearby in the quote dimension
  (unlike the i.i.d. mixture model of section 5.1);
* volumes are heavy-tailed (Pareto-like, like real trade sizes);
* buy/sell/transaction types follow the paper's 0.4/0.4/0.2 split.

The stream exercises the same code paths as the mixture model — it emits
:class:`~repro.workload.publications.PublicationEvent` objects — but its
temporal locality makes it the right workload for broker-dynamics and
cache-behaviour studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..geometry import EventSpace
from ..network import Topology
from .distributions import ParetoLength, ZipfLike
from .publications import PublicationEvent
from .spaces import evaluation_space

__all__ = ["TradeStreamConfig", "TradeStreamGenerator"]


@dataclass(frozen=True)
class TradeStreamConfig:
    """Knobs of the synthetic trade stream."""

    n_stocks: int = 21  # one per lattice value of the name dimension
    popularity_exponent: float = 1.0  # Zipf over stocks
    price_reversion: float = 0.2  # pull towards the stock's base price
    price_volatility: float = 1.2  # random-walk step scale
    volume_scale: float = 2.0  # Pareto scale of trade sizes
    volume_shape: float = 1.2
    bst_probs: Sequence[float] = (0.4, 0.4, 0.2)

    def __post_init__(self) -> None:
        if self.n_stocks < 1:
            raise ValueError("need at least one stock")
        if not 0.0 <= self.price_reversion <= 1.0:
            raise ValueError("price_reversion must be in [0, 1]")
        if self.price_volatility < 0:
            raise ValueError("price_volatility must be non-negative")
        if abs(sum(self.bst_probs) - 1.0) > 1e-9 or len(self.bst_probs) != 3:
            raise ValueError("bst_probs must be three values summing to 1")


class TradeStreamGenerator:
    """Stateful generator of a correlated trade event stream."""

    def __init__(
        self,
        topology: Topology,
        config: Optional[TradeStreamConfig] = None,
        space: Optional[EventSpace] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.topology = topology
        self.config = config or TradeStreamConfig()
        self.space = space or evaluation_space()
        self._rng = rng or np.random.default_rng()
        name_dim = self.space.dimensions[1]
        n = min(self.config.n_stocks, name_dim.n_cells)

        self._stub_nodes = topology.stub_nodes()
        if not self._stub_nodes:
            raise ValueError("topology has no stub nodes to publish from")
        self._popularity = ZipfLike(n, self.config.popularity_exponent)
        # each stock has a fixed name coordinate and a wandering price
        self._names = self._rng.permutation(name_dim.n_cells)[:n] + name_dim.lo
        quote_dim = self.space.dimensions[2]
        self._base_price = self._rng.uniform(
            quote_dim.lo + 2, quote_dim.hi - 2, size=n
        )
        self._price = self._base_price.copy()
        self._volume_dist = ParetoLength(
            scale=self.config.volume_scale,
            shape=self.config.volume_shape,
            max_length=float(self.space.dimensions[3].hi),
        )
        self.n_stocks = n

    # ------------------------------------------------------------------
    def next_event(self) -> PublicationEvent:
        """Generate the next trade in the stream."""
        rng = self._rng
        config = self.config
        stock = int(self._popularity.sample(rng))

        # mean-reverting random walk in the quote dimension
        drift = config.price_reversion * (
            self._base_price[stock] - self._price[stock]
        )
        self._price[stock] += drift + rng.normal(0, config.price_volatility)
        quote_dim = self.space.dimensions[2]
        self._price[stock] = float(
            np.clip(self._price[stock], quote_dim.lo, quote_dim.hi)
        )

        bst = int(rng.choice(3, p=np.asarray(config.bst_probs)))
        volume_dim = self.space.dimensions[3]
        volume = int(
            np.clip(
                round(float(self._volume_dist.sample(rng))),
                volume_dim.lo,
                volume_dim.hi,
            )
        )
        point = (
            bst,
            int(self._names[stock]),
            int(round(self._price[stock])),
            volume,
        )
        publisher = int(rng.choice(self._stub_nodes))
        return PublicationEvent(point=point, publisher=publisher)

    def stream(self, n_events: int) -> Iterator[PublicationEvent]:
        """Yield ``n_events`` consecutive trades."""
        for _ in range(n_events):
            yield self.next_event()

    def sample(self, rng: np.random.Generator, n: int) -> List[PublicationEvent]:
        """PublicationModel-compatible sampling (ignores ``rng``: the
        stream is stateful and owns its generator)."""
        return list(self.stream(n))

    # ------------------------------------------------------------------
    def cell_pmf(self) -> np.ndarray:
        """Approximate stationary cell pmf of the stream.

        Estimated empirically from a throw-away copy of the stream (the
        walk makes an analytic form impractical); good enough to drive
        the clustering density.  Deterministic given the generator's
        construction-time RNG state is *not* guaranteed — pass a seeded
        generator and call this before consuming events for stable
        results.
        """
        probe = TradeStreamGenerator(
            self.topology,
            self.config,
            space=self.space,
            rng=np.random.default_rng(12345),
        )
        counts = np.zeros(self.space.n_cells, dtype=np.float64)
        for event in probe.stream(20000):
            counts[self.space.locate(event.point)] += 1
        total = counts.sum()
        if total == 0:  # pragma: no cover - defensive
            return np.full(self.space.n_cells, 1.0 / self.space.n_cells)
        return counts / total
