"""Non-rectangular subscription interest sets (future-work item 1).

The paper's discussion: "Proposed algorithms can be adapted to make use
of non-rectangular subscription interest sets ... the same grid data
structures can be created without requiring the sets to be rectangles."
This module implements that adaptation: a subscriber's interest is an
arbitrary *predicate* over event points, rasterised onto the grid when
the membership matrix is built.  Everything downstream — hyper-cells,
the expected-waste distance, every grid-based clustering algorithm and
the grid matcher — works unchanged.  (Only the No-Loss algorithm is
excluded: the paper notes it "relies on the rectangular interest set
assumption".)

Predicates are vectorised: a callable receiving an ``(n, N)`` array of
lattice points and returning an ``(n,)`` boolean array.  Helpers build
the common shapes (rectangles, unions, balls, custom conditions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from ..geometry import EventSpace, Rectangle

__all__ = [
    "Predicate",
    "PredicateSubscription",
    "PredicateSubscriptionSet",
    "rectangle_predicate",
    "union_predicate",
    "ball_predicate",
]

#: a vectorised interest test: (n, N) lattice points -> (n,) bools
Predicate = Callable[[np.ndarray], np.ndarray]


def rectangle_predicate(rectangle: Rectangle) -> Predicate:
    """Predicate form of an aligned rectangle (half-open semantics)."""
    los = np.array([side.lo for side in rectangle.sides])
    his = np.array([side.hi for side in rectangle.sides])

    def predicate(points: np.ndarray) -> np.ndarray:
        return np.all((los < points) & (points <= his), axis=1)

    return predicate


def union_predicate(predicates: Sequence[Predicate]) -> Predicate:
    """Interest in any of several regions (e.g. a 'blue chip' category
    decomposed into a union of conjunctions, as in the paper's intro)."""
    if not predicates:
        raise ValueError("union of zero predicates is empty")
    parts = tuple(predicates)

    def predicate(points: np.ndarray) -> np.ndarray:
        result = parts[0](points)
        for p in parts[1:]:
            result = result | p(points)
        return result

    return predicate


def ball_predicate(center: Sequence[float], radius: float) -> Predicate:
    """A genuinely non-rectangular shape: a Euclidean ball of interest."""
    c = np.asarray(center, dtype=np.float64)
    if radius <= 0:
        raise ValueError("radius must be positive")

    def predicate(points: np.ndarray) -> np.ndarray:
        return np.sum((points - c) ** 2, axis=1) <= radius**2

    return predicate


@dataclass(frozen=True)
class PredicateSubscription:
    """One predicate-based subscription owned by a subscriber at a node."""

    subscriber: int
    node: int
    predicate: Predicate


class PredicateSubscriptionSet:
    """Drop-in subscription source backed by arbitrary predicates.

    Implements the interface the grid framework and the grid matcher
    consume: ``space``, ``n_subscribers``, ``subscriber_nodes``,
    ``interested_subscribers``, ``nodes_of_subscribers`` and
    ``membership_matrix``.
    """

    def __init__(
        self,
        space: EventSpace,
        subscriptions: Sequence[PredicateSubscription],
    ) -> None:
        if not subscriptions:
            raise ValueError("subscription set must not be empty")
        self.space = space
        self.subscriptions: Tuple[PredicateSubscription, ...] = tuple(
            subscriptions
        )
        self.n_subscribers = 1 + max(s.subscriber for s in subscriptions)
        node_of = np.full(self.n_subscribers, -1, dtype=np.int64)
        for sub in subscriptions:
            if sub.subscriber < 0:
                raise ValueError("subscriber ids must be non-negative")
            if node_of[sub.subscriber] not in (-1, sub.node):
                raise ValueError(
                    f"subscriber {sub.subscriber} appears at two nodes"
                )
            node_of[sub.subscriber] = sub.node
        if np.any(node_of < 0):
            raise ValueError("every subscriber id up to the max must be used")
        self._node_of = node_of

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.subscriptions)

    @property
    def subscriber_nodes(self) -> np.ndarray:
        return self._node_of

    def node_of(self, subscriber: int) -> int:
        return int(self._node_of[subscriber])

    def nodes_of_subscribers(self, subscribers: Sequence[int]) -> np.ndarray:
        if len(subscribers) == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(self._node_of[np.asarray(subscribers, dtype=np.int64)])

    # ------------------------------------------------------------------
    def interested_subscribers(self, point: Sequence[float]) -> np.ndarray:
        """Subscriber ids whose predicate accepts the event point."""
        x = np.asarray(point, dtype=np.float64).reshape(1, -1)
        if x.shape[1] != self.space.n_dims:
            raise ValueError("point dimensionality mismatch")
        hits = {
            s.subscriber
            for s in self.subscriptions
            if bool(s.predicate(x)[0])
        }
        return np.array(sorted(hits), dtype=np.int64)

    def interested_nodes(self, point: Sequence[float]) -> np.ndarray:
        return self.nodes_of_subscribers(self.interested_subscribers(point))

    # ------------------------------------------------------------------
    def membership_matrix(self, space: EventSpace) -> np.ndarray:
        """Rasterise every predicate onto the grid.

        A cell is *interesting* to a subscriber when its lattice point
        satisfies the predicate (cells are identified with their lattice
        values, matching the rectangle path's unit grid).
        """
        if space is not self.space and space.shape != self.space.shape:
            raise ValueError("space mismatch")
        points = np.array(
            [space.cell_value(c) for c in range(space.n_cells)],
            dtype=np.float64,
        )
        membership = np.zeros((space.n_cells, self.n_subscribers), dtype=bool)
        for sub in self.subscriptions:
            membership[:, sub.subscriber] |= sub.predicate(points)
        return membership
