"""Subscription workload models.

A subscriber sits at a network node and expresses interest as an aligned
rectangle of the event space.  The paper uses two generators:

* **Section 3 (preliminary analysis)** — 4 attributes.  The first is the
  regional attribute: with probability equal to the *degree of
  regionalism* the subscription pins it to the subscriber's own stub,
  otherwise it is a wildcard.  The other three attributes follow either
  the *uniform* model (specified with probabilities 0.98, 0.98·0.78,
  0.98·0.78², interval ends drawn uniformly from 0..20) or the *gaussian*
  model (the q/mu/sigma table of section 3).
* **Section 5.1 (evaluation)** — {bst, name, quote, volume} stock
  subscriptions placed over the topology with a {40 %, 30 %, 30 %} split
  across the three transit blocks and Zipf-like laws across stubs and
  nodes; name intervals centred per transit block (means 3, 10, 17 with
  sigma 4) with Zipf-distributed lengths; quote/volume intervals from the
  parametric distribution with the table parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import EventSpace, Interval, Rectangle
from ..network import Topology
from .distributions import IntervalDistribution, ParetoLength, ZipfLike
from .spaces import evaluation_space, preliminary_space

__all__ = [
    "Subscription",
    "SubscriptionSet",
    "PreliminarySubscriptionModel",
    "EvaluationSubscriptionModel",
]


@dataclass(frozen=True)
class Subscription:
    """One subscription rectangle owned by a subscriber at a node."""

    subscriber: int
    node: int
    rectangle: Rectangle


class SubscriptionSet:
    """The totality of subscriptions, with vectorised matching support."""

    def __init__(
        self,
        space: EventSpace,
        subscriptions: Sequence[Subscription],
    ) -> None:
        if not subscriptions:
            raise ValueError("subscription set must not be empty")
        self.space = space
        self.subscriptions: Tuple[Subscription, ...] = tuple(subscriptions)
        self.n_subscribers = 1 + max(s.subscriber for s in subscriptions)
        for sub in subscriptions:
            if sub.rectangle.dimensions != space.n_dims:
                raise ValueError("subscription dimensionality mismatch")
            if sub.subscriber < 0:
                raise ValueError("subscriber ids must be non-negative")

        k = len(self.subscriptions)
        n = space.n_dims
        self._los = np.empty((k, n), dtype=np.float64)
        self._his = np.empty((k, n), dtype=np.float64)
        for i, sub in enumerate(self.subscriptions):
            for d, side in enumerate(sub.rectangle.sides):
                self._los[i, d] = side.lo
                self._his[i, d] = side.hi
        self._owners = np.array(
            [s.subscriber for s in self.subscriptions], dtype=np.int64
        )
        node_of = np.full(self.n_subscribers, -1, dtype=np.int64)
        for sub in self.subscriptions:
            if node_of[sub.subscriber] not in (-1, sub.node):
                raise ValueError(
                    f"subscriber {sub.subscriber} appears at two nodes"
                )
            node_of[sub.subscriber] = sub.node
        if np.any(node_of < 0):
            raise ValueError("every subscriber id up to the max must be used")
        self._node_of = node_of
        # ---- churn support (online runtime) --------------------------
        # live flags per subscriber id; rows of departed subscribers are
        # blanked to never-matching bounds so ids stay stable between
        # refits and every index built on them keeps working
        self._alive = np.ones(self.n_subscribers, dtype=bool)
        self._n_alive = self.n_subscribers

    # ------------------------------------------------------------------
    # incremental churn: joins append, leaves deactivate in place
    # ------------------------------------------------------------------
    @property
    def n_active_subscribers(self) -> int:
        """Subscribers currently live (``n_subscribers`` minus leaves)."""
        return self._n_alive

    def is_active(self, subscriber: int) -> bool:
        return bool(self._alive[subscriber])

    def add(self, node: int, rectangle: Rectangle) -> int:
        """Append one new subscriber with a single rectangle; returns
        its id (ids are never reused within a set's lifetime).

        The bound matrices are extended with the new row, so the
        subscription matches events immediately — no rebuild of the set
        is needed.  A refit compacts departed ids away via
        :meth:`compact`.
        """
        if rectangle.dimensions != self.space.n_dims:
            raise ValueError("subscription dimensionality mismatch")
        if node < 0:
            raise ValueError("node must be non-negative")
        subscriber = self.n_subscribers
        sub = Subscription(subscriber, node, rectangle)
        lo_row = np.array(
            [side.lo for side in rectangle.sides], dtype=np.float64
        )
        hi_row = np.array(
            [side.hi for side in rectangle.sides], dtype=np.float64
        )
        self._los = np.concatenate([self._los, lo_row[None, :]])
        self._his = np.concatenate([self._his, hi_row[None, :]])
        self._owners = np.append(self._owners, subscriber)
        self._node_of = np.append(self._node_of, node)
        self._alive = np.append(self._alive, True)
        self.subscriptions = self.subscriptions + (sub,)
        self.n_subscribers += 1
        self._n_alive += 1
        return subscriber

    def deactivate(self, subscriber: int) -> None:
        """Process a leave: the subscriber's rows stop matching anything.

        The id and its node mapping are kept (group membership vectors
        and delivery-plan indices built on the old width stay valid);
        only the rectangle bounds are blanked so no event ever matches.
        """
        if not 0 <= subscriber < self.n_subscribers:
            raise KeyError(f"unknown subscriber {subscriber}")
        if not self._alive[subscriber]:
            raise KeyError(f"subscriber {subscriber} already departed")
        rows = np.nonzero(self._owners == subscriber)[0]
        self._los[rows] = np.inf
        self._his[rows] = -np.inf
        self._alive[subscriber] = False
        self._n_alive -= 1

    def active_subscriptions(self) -> List[Subscription]:
        """The live subscriptions (in id order, departed ones dropped)."""
        return [
            s for s in self.subscriptions if self._alive[s.subscriber]
        ]

    def compact(self) -> Tuple["SubscriptionSet", np.ndarray]:
        """A fresh set with dense 0..n-1 ids, plus the old→new id map.

        Departed subscribers map to ``-1``.  This is what a full refit
        (and persistence) operates on after interleaved join/leave churn.
        """
        mapping = np.full(self.n_subscribers, -1, dtype=np.int64)
        mapping[self._alive] = np.arange(self._n_alive, dtype=np.int64)
        compacted = [
            Subscription(
                int(mapping[s.subscriber]), s.node, s.rectangle
            )
            for s in self.subscriptions
            if self._alive[s.subscriber]
        ]
        return SubscriptionSet(self.space, compacted), mapping

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.subscriptions)

    @property
    def subscriber_nodes(self) -> np.ndarray:
        """Array mapping subscriber id -> network node."""
        return self._node_of

    @property
    def row_owners(self) -> np.ndarray:
        """Subscriber id of every subscription row (aggregation uses
        this to group rows without reaching into internals)."""
        return self._owners

    @property
    def alive_rows(self) -> np.ndarray:
        """Boolean mask over subscription rows: True while the owning
        subscriber has not departed."""
        return self._alive[self._owners]

    def node_of(self, subscriber: int) -> int:
        return int(self._node_of[subscriber])

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(los, his)`` matrices of the subscription rectangles."""
        return self._los, self._his

    def rectangles(self) -> List[Rectangle]:
        return [s.rectangle for s in self.subscriptions]

    # ------------------------------------------------------------------
    def matching_subscriptions(self, point: Sequence[float]) -> np.ndarray:
        """Indices of subscriptions whose rectangle contains the point."""
        x = np.asarray(point, dtype=np.float64)
        if x.shape != (self.space.n_dims,):
            raise ValueError("point dimensionality mismatch")
        mask = np.all((self._los < x) & (x <= self._his), axis=1)
        return np.nonzero(mask)[0]

    def interested_subscribers(self, point: Sequence[float]) -> np.ndarray:
        """Subscriber ids interested in the event (sorted, unique)."""
        return np.unique(self._owners[self.matching_subscriptions(point)])

    def interested_nodes(self, point: Sequence[float]) -> np.ndarray:
        """Network nodes hosting at least one interested subscriber."""
        return np.unique(self._node_of[self.interested_subscribers(point)])

    def nodes_of_subscribers(self, subscribers: Sequence[int]) -> np.ndarray:
        """Unique network nodes of the given subscriber ids."""
        if len(subscribers) == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(self._node_of[np.asarray(subscribers, dtype=np.int64)])

    def batch_interested_subscribers(
        self, points: Sequence[Sequence[float]]
    ) -> List[np.ndarray]:
        """Interested subscribers for many events in one vectorised pass.

        Broadcasting one ``(E, 1, N)`` point array against the
        ``(k, N)`` bound matrices answers all events at once — the fast
        path for experiment loops that price hundreds of events.
        Equivalent to calling :meth:`interested_subscribers` per point.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.size == 0:
            pts = pts.reshape(0, self.space.n_dims)
        if pts.ndim != 2 or pts.shape[1] != self.space.n_dims:
            raise ValueError("points must be an (E, n_dims) array-like")
        # (E, k): subscription j matches event e
        hits = np.all(
            (self._los[None, :, :] < pts[:, None, :])
            & (pts[:, None, :] <= self._his[None, :, :]),
            axis=2,
        )
        return [
            np.unique(self._owners[np.nonzero(row)[0]]) for row in hits
        ]


# ----------------------------------------------------------------------
# Section 3 model
# ----------------------------------------------------------------------
#: the gaussian variant's per-attribute parameters (section 3 table):
#: (wildcard, left-ended, right-ended, mu1, s1, mu2, s2, mu3, s3, mean len)
_GAUSSIAN_ROWS = (
    (0.10, 0.0, 0.0, 8, 2, 10, 2, 9, 6, 1.0),
    (0.15, 0.1, 0.1, 8, 1, 10, 1, 9, 2, 4.0),
    (0.35, 0.1, 0.1, 8, 1, 10, 1, 9, 2, 4.0),
)

#: probability that attribute i+1 is specified in the uniform variant
_UNIFORM_SPECIFIED = (0.98, 0.98 * 0.78, 0.98 * 0.78**2)


class PreliminarySubscriptionModel:
    """Subscription generator for the section 3 experiments."""

    def __init__(
        self,
        topology: Topology,
        variant: str = "uniform",
        regionalism: float = 0.4,
        space: Optional[EventSpace] = None,
    ) -> None:
        if variant not in ("uniform", "gaussian"):
            raise ValueError("variant must be 'uniform' or 'gaussian'")
        if not 0.0 <= regionalism <= 1.0:
            raise ValueError("degree of regionalism must be in [0, 1]")
        self.topology = topology
        self.variant = variant
        self.regionalism = regionalism
        self.space = space or preliminary_space(topology.n_stubs)
        self._gaussian_dists = tuple(
            IntervalDistribution(
                q0=row[0],
                q1=row[1],
                q2=row[2],
                mu1=row[3],
                sigma1=row[4],
                mu2=row[5],
                sigma2=row[6],
                mu3=row[7],
                sigma3=row[8],
                length=ParetoLength(scale=row[9], shape=1.0),
            )
            for row in _GAUSSIAN_ROWS
        )

    def generate(
        self, rng: np.random.Generator, n_subscriptions: int
    ) -> SubscriptionSet:
        """Generate subscriptions placed uniformly over stub nodes."""
        stub_nodes = self.topology.stub_nodes()
        subs: List[Subscription] = []
        for subscriber in range(n_subscriptions):
            node = int(rng.choice(stub_nodes))
            sides = [self._regional_side(node, rng)]
            for attr in range(3):
                sides.append(self._attribute_side(attr, rng))
            subs.append(
                Subscription(subscriber, node, Rectangle(tuple(sides)))
            )
        return SubscriptionSet(self.space, subs)

    # ------------------------------------------------------------------
    def _regional_side(self, node: int, rng: np.random.Generator) -> Interval:
        if rng.random() < self.regionalism:
            stub = self.topology.stub_of[node]
            return Interval.point(float(stub))
        return Interval.full()

    def _attribute_side(self, attr: int, rng: np.random.Generator) -> Interval:
        dim = self.space.dimensions[attr + 1]
        if self.variant == "uniform":
            if rng.random() >= _UNIFORM_SPECIFIED[attr]:
                return Interval.full()
            a, b = rng.integers(dim.lo, dim.hi + 1, size=2)
            lo, hi = (int(a), int(b)) if a <= b else (int(b), int(a))
            # the interval [lo, hi] on the lattice is (lo-1, hi] half-open
            return Interval.make(lo - 1.0, float(hi))
        return self._gaussian_dists[attr].sample(rng)


# ----------------------------------------------------------------------
# Section 5.1 model
# ----------------------------------------------------------------------
class EvaluationSubscriptionModel:
    """Subscription generator for the section 5.1 stock-market model."""

    #: probabilities of the bst field being Buy / Sell / Transaction
    BST_PROBS = (0.4, 0.4, 0.2)

    def __init__(
        self,
        topology: Topology,
        block_weights: Sequence[float] = (0.4, 0.3, 0.3),
        name_means: Sequence[float] = (3.0, 10.0, 17.0),
        name_sigma: float = 4.0,
        zipf_exponent: float = 1.0,
        space: Optional[EventSpace] = None,
    ) -> None:
        n_blocks = topology.n_transit_blocks
        if n_blocks < 1:
            raise ValueError("topology has no transit blocks")
        self.topology = topology
        self.space = space or evaluation_space()
        self.zipf_exponent = zipf_exponent
        self.name_sigma = name_sigma
        if len(block_weights) == n_blocks:
            weights = np.asarray(block_weights, dtype=np.float64)
        else:
            # adapt gracefully to topologies with a different block count
            weights = np.ones(n_blocks, dtype=np.float64)
        self.block_weights = weights / weights.sum()
        if len(name_means) == n_blocks:
            self.name_means = tuple(float(m) for m in name_means)
        else:
            name_dim = self.space.dimensions[1]
            self.name_means = tuple(
                name_dim.lo + (i + 1) * (name_dim.hi - name_dim.lo) / (n_blocks + 1)
                for i in range(n_blocks)
            )
        self._quote_dist = IntervalDistribution(
            q0=0.15, q1=0.1, q2=0.1,
            mu1=9, sigma1=1, mu2=9, sigma2=1, mu3=9, sigma3=2,
            length=ParetoLength(scale=4.0, shape=1.0),
        )
        self._volume_dist = IntervalDistribution(
            q0=0.35, q1=0.1, q2=0.1,
            mu1=9, sigma1=1, mu2=9, sigma2=1, mu3=9, sigma3=2,
            length=ParetoLength(scale=4.0, shape=1.0),
        )

    # ------------------------------------------------------------------
    def generate(
        self, rng: np.random.Generator, n_subscriptions: int
    ) -> SubscriptionSet:
        """Generate subscriptions with the Zipf placement of section 5.1."""
        nodes = self._place_subscribers(rng, n_subscriptions)
        subs: List[Subscription] = []
        for subscriber, node in enumerate(nodes):
            block = self.topology.transit_block[node]
            rectangle = Rectangle(
                (
                    self._bst_side(rng),
                    self._name_side(block, rng),
                    self._quote_dist.sample(rng),
                    self._volume_dist.sample(rng),
                )
            )
            subs.append(Subscription(subscriber, node, rectangle))
        return SubscriptionSet(self.space, subs)

    # ------------------------------------------------------------------
    def _place_subscribers(
        self, rng: np.random.Generator, n_subscriptions: int
    ) -> List[int]:
        """Node of each subscription: blocks -> stubs (Zipf) -> nodes (Zipf)."""
        per_block = rng.multinomial(n_subscriptions, self.block_weights)
        nodes: List[int] = []
        for block, count in enumerate(per_block):
            stub_ids = self.topology.stubs_in_block(block)
            if not stub_ids:
                raise ValueError(f"transit block {block} has no stubs")
            stub_zipf = ZipfLike(len(stub_ids), self.zipf_exponent)
            # randomise which stub gets the heavy Zipf head
            order = rng.permutation(len(stub_ids))
            per_stub = stub_zipf.split(int(count), rng)
            for rank, stub_count in enumerate(per_stub):
                stub = stub_ids[order[rank]]
                members = self.topology.stubs[stub]
                node_zipf = ZipfLike(len(members), self.zipf_exponent)
                node_order = rng.permutation(len(members))
                for node_rank in node_zipf.sample(rng, size=int(stub_count)):
                    nodes.append(members[node_order[node_rank]])
        rng.shuffle(nodes)
        return nodes

    def _bst_side(self, rng: np.random.Generator) -> Interval:
        value = int(rng.choice(3, p=self.BST_PROBS))
        return Interval.point(float(value))

    def _name_side(self, block: int, rng: np.random.Generator) -> Interval:
        dim = self.space.dimensions[1]
        center = rng.normal(self.name_means[block], self.name_sigma)
        length_zipf = ZipfLike(dim.n_cells, self.zipf_exponent)
        length = 1.0 + float(length_zipf.sample(rng))
        return Interval.make(center - 0.5 * length, center + 0.5 * length)
