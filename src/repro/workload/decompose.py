"""Multi-range subscription decomposition (section 1 of the paper).

Content-based predicates may be *range-based* — "composed of intervals
in the underlying domain of the predicate".  The paper reduces that
generality up front: "By decomposing a subscription with multiple such
ranges into multiple subscriptions consisting of single ranges we can
see that it is sufficient only to consider intervals, albeit at a cost
of more subscriptions."  This module performs that decomposition: a
subscription whose dimensions carry *unions of intervals* (e.g. the
"blue chip" stock category of the introduction) expands into the
cross-product of single-interval rectangles, all owned by the same
subscriber.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..geometry import Interval, Rectangle
from .subscriptions import Subscription

__all__ = ["MultiRangeSubscription", "decompose", "decompose_all"]


@dataclass(frozen=True)
class MultiRangeSubscription:
    """A subscription with a union of intervals per dimension.

    ``ranges[d]`` is the sequence of acceptable intervals in dimension
    ``d``; the interest set is the union over all combinations (a union
    of aligned rectangles).
    """

    subscriber: int
    node: int
    ranges: Tuple[Tuple[Interval, ...], ...]

    def __post_init__(self) -> None:
        if not self.ranges:
            raise ValueError("need at least one dimension")
        for d, intervals in enumerate(self.ranges):
            if not intervals:
                raise ValueError(f"dimension {d} has no intervals")

    @property
    def dimensions(self) -> int:
        return len(self.ranges)

    def n_rectangles(self) -> int:
        """Size of the decomposition (product of per-dimension counts)."""
        count = 1
        for intervals in self.ranges:
            count *= len(intervals)
        return count

    def contains(self, point: Sequence[float]) -> bool:
        """Membership in the union-of-rectangles interest set."""
        if len(point) != self.dimensions:
            raise ValueError("point dimensionality mismatch")
        return all(
            any(interval.contains(x) for interval in intervals)
            for intervals, x in zip(self.ranges, point)
        )


def _merge_intervals(intervals: Sequence[Interval]) -> List[Interval]:
    """Canonicalise a union: drop empties, merge overlapping/touching
    half-open intervals (``(a,b]`` and ``(b,c]`` merge to ``(a,c]``)."""
    non_empty = sorted(
        (iv for iv in intervals if not iv.is_empty),
        key=lambda iv: (iv.lo, iv.hi),
    )
    merged: List[Interval] = []
    for interval in non_empty:
        if merged and interval.lo <= merged[-1].hi:
            merged[-1] = Interval.make(
                merged[-1].lo, max(merged[-1].hi, interval.hi)
            )
        else:
            merged.append(interval)
    return merged


def decompose(subscription: MultiRangeSubscription) -> List[Subscription]:
    """Expand one multi-range subscription into single-range ones.

    Per-dimension interval unions are canonicalised first (overlapping
    and touching intervals merged), so the output rectangles are
    pairwise disjoint and their union equals the original interest set.
    Raises when some dimension's union is empty.
    """
    merged_per_dim: List[List[Interval]] = []
    for d, intervals in enumerate(subscription.ranges):
        merged = _merge_intervals(intervals)
        if not merged:
            raise ValueError(
                f"dimension {d} of subscriber {subscription.subscriber} "
                "has an empty interval union"
            )
        merged_per_dim.append(merged)
    return [
        Subscription(
            subscription.subscriber,
            subscription.node,
            Rectangle(tuple(combo)),
        )
        for combo in itertools.product(*merged_per_dim)
    ]


def decompose_all(
    subscriptions: Sequence[MultiRangeSubscription],
) -> List[Subscription]:
    """Decompose a collection, preserving subscriber identities."""
    result: List[Subscription] = []
    for subscription in subscriptions:
        result.extend(decompose(subscription))
    return result
