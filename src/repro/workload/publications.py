"""Publication (event) workload models.

Publications are points of the event space, each originating at a
publisher node of the network.  The paper uses two families of models:

* **Section 3 (preliminary analysis)** — 4 dimensions; the first is the
  identifier of the stub the event originates from (the "regional
  attribute"); the remaining three take integer values 0..20, either
  uniformly or from a gaussian.
* **Section 5.1 (evaluation)** — points from a mixture of multivariate
  normals with 1, 4 or 9 modes, built as independent per-dimension
  mixtures, rounded and clipped onto the lattice.

All models expose an exact per-cell probability mass function
``cell_pmf()``, which the grid-based clustering framework uses as the
publication density ``p_p`` in the expected-waste distance, and the
No-Loss algorithm uses to weigh candidate rectangles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple, Union

import numpy as np

from ..geometry import EventSpace
from ..network import Topology
from .distributions import GaussianMixture1D, UniformLattice
from .spaces import evaluation_space, preliminary_space

__all__ = [
    "PublicationEvent",
    "PublicationModel",
    "PreliminaryPublicationModel",
    "MixturePublicationModel",
    "single_mode_mixture",
    "four_mode_mixture",
    "nine_mode_mixture",
]

AttributeDistribution = Union[GaussianMixture1D, UniformLattice]


@dataclass(frozen=True)
class PublicationEvent:
    """A published event: a lattice point plus its publisher node."""

    point: Tuple[int, ...]
    publisher: int


class PublicationModel(Protocol):
    """Common interface of the publication workloads."""

    space: EventSpace

    def sample(self, rng: np.random.Generator, n: int) -> List[PublicationEvent]:
        """Draw ``n`` events (points with publisher nodes)."""
        ...

    def cell_pmf(self) -> np.ndarray:
        """Exact probability mass of each flat grid cell (sums to 1)."""
        ...


def _product_pmf(space: EventSpace, per_dim: Sequence[np.ndarray]) -> np.ndarray:
    """Flat cell pmf of a per-dimension-independent model."""
    pmf = per_dim[0]
    for marginal in per_dim[1:]:
        pmf = np.multiply.outer(pmf, marginal)
    return pmf.reshape(-1)


class PreliminaryPublicationModel:
    """The section 3 publication model.

    An event's publisher is a uniformly random stub node; the regional
    attribute (dimension 0) is set to the identifier of the publisher's
    stub; the remaining attributes are drawn independently from the given
    distributions (uniform or gaussian over 0..20).
    """

    def __init__(
        self,
        topology: Topology,
        attribute_distributions: Sequence[AttributeDistribution],
        space: Optional[EventSpace] = None,
    ) -> None:
        self.topology = topology
        self.space = space or preliminary_space(topology.n_stubs)
        if len(attribute_distributions) != self.space.n_dims - 1:
            raise ValueError(
                "need one attribute distribution per non-regional dimension"
            )
        self.attribute_distributions = tuple(attribute_distributions)
        self._stub_nodes = topology.stub_nodes()
        if not self._stub_nodes:
            raise ValueError("topology has no stub nodes to publish from")

    def sample(self, rng: np.random.Generator, n: int) -> List[PublicationEvent]:
        publishers = rng.choice(self._stub_nodes, size=n)
        columns = [np.array([self.topology.stub_of[p] for p in publishers])]
        for dim, dist in zip(self.space.dimensions[1:], self.attribute_distributions):
            if isinstance(dist, UniformLattice):
                columns.append(dist.sample(rng, dim, n))
            else:
                raw = dist.sample(rng, n)
                columns.append(np.clip(np.rint(raw), dim.lo, dim.hi).astype(int))
        points = np.stack(columns, axis=1)
        return [
            PublicationEvent(tuple(int(x) for x in row), int(pub))
            for row, pub in zip(points, publishers)
        ]

    def cell_pmf(self) -> np.ndarray:
        # each stub is the origin with probability proportional to its size
        # (publisher nodes are uniform over stub nodes)
        stub_sizes = np.array(
            [len(members) for members in self.topology.stubs], dtype=np.float64
        )
        region_pmf = stub_sizes / stub_sizes.sum()
        per_dim = [region_pmf]
        for dim, dist in zip(self.space.dimensions[1:], self.attribute_distributions):
            per_dim.append(dist.lattice_pmf(dim))
        return _product_pmf(self.space, per_dim)


class MixturePublicationModel:
    """The section 5.1 publication model: per-dimension gaussian mixtures.

    The 1-, 4- and 9-mode multivariate mixtures of the paper are products
    of independent per-dimension mixtures; publisher nodes are uniform
    over the stub nodes of the topology (the paper leaves publisher
    placement unspecified; stub nodes are where clients live).
    """

    def __init__(
        self,
        topology: Topology,
        mixtures: Sequence[GaussianMixture1D],
        space: Optional[EventSpace] = None,
    ) -> None:
        self.topology = topology
        self.space = space or evaluation_space()
        if len(mixtures) != self.space.n_dims:
            raise ValueError("need one mixture per dimension")
        self.mixtures = tuple(mixtures)
        self._stub_nodes = topology.stub_nodes()
        if not self._stub_nodes:
            raise ValueError("topology has no stub nodes to publish from")

    def sample(self, rng: np.random.Generator, n: int) -> List[PublicationEvent]:
        publishers = rng.choice(self._stub_nodes, size=n)
        columns = []
        for dim, mixture in zip(self.space.dimensions, self.mixtures):
            raw = mixture.sample(rng, n)
            columns.append(np.clip(np.rint(raw), dim.lo, dim.hi).astype(int))
        points = np.stack(columns, axis=1)
        return [
            PublicationEvent(tuple(int(x) for x in row), int(pub))
            for row, pub in zip(points, publishers)
        ]

    def cell_pmf(self) -> np.ndarray:
        per_dim = [
            mixture.lattice_pmf(dim)
            for dim, mixture in zip(self.space.dimensions, self.mixtures)
        ]
        return _product_pmf(self.space, per_dim)


# ----------------------------------------------------------------------
# The three evaluation mixtures (section 5.1 parameters)
# ----------------------------------------------------------------------
def single_mode_mixture() -> List[GaussianMixture1D]:
    """One-mode distribution: (1,1), (10,6), (9,2), (9,6) per dimension."""
    return [
        GaussianMixture1D.single(1, 1),
        GaussianMixture1D.single(10, 6),
        GaussianMixture1D.single(9, 2),
        GaussianMixture1D.single(9, 6),
    ]


def four_mode_mixture() -> List[GaussianMixture1D]:
    """Four-mode distribution (2 x 2 modes in dimensions 2 and 3)."""
    return [
        GaussianMixture1D.single(1, 1),
        GaussianMixture1D([(0.5, 12, 3), (0.5, 6, 2)]),
        GaussianMixture1D([(0.5, 4, 2), (0.5, 16, 2)]),
        GaussianMixture1D.single(9, 6),
    ]


def nine_mode_mixture() -> List[GaussianMixture1D]:
    """Nine-mode distribution (3 x 3 modes in dimensions 2 and 3)."""
    return [
        GaussianMixture1D.single(1, 1),
        GaussianMixture1D([(0.3, 4, 3), (0.4, 11, 3), (0.3, 18, 3)]),
        GaussianMixture1D([(0.3, 4, 3), (0.4, 9, 3), (0.3, 16, 3)]),
        GaussianMixture1D.single(9, 6),
    ]
