"""Probability distributions used by the workload generators.

The paper's subscription and publication models (sections 3 and 5.1) draw
on Zipf-like popularity laws, Pareto-like interval lengths, (truncated)
normals, and per-dimension Gaussian mixtures.  Everything here consumes an
explicit ``numpy.random.Generator`` so experiments are reproducible from a
single seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import Dimension, Interval

__all__ = [
    "ZipfLike",
    "ParetoLength",
    "GaussianMixture1D",
    "UniformLattice",
    "IntervalDistribution",
    "normal_cdf",
]


def normal_cdf(x: float, mu: float, sigma: float) -> float:
    """CDF of the normal distribution (via ``math.erf``; no scipy)."""
    if sigma <= 0:
        return 1.0 if x >= mu else 0.0
    return 0.5 * (1.0 + math.erf((x - mu) / (sigma * math.sqrt(2.0))))


class ZipfLike:
    """Zipf-like distribution over ranks ``0 .. n-1``.

    Rank ``i`` has weight ``1 / (i+1)^exponent``, normalised.  The paper
    uses Zipf-like laws for the number of subscriptions per stub, the
    placement of subscriptions within a stub, and the lengths of the
    stock-name intervals.
    """

    def __init__(self, n: int, exponent: float = 1.0) -> None:
        if n < 1:
            raise ValueError("ZipfLike needs at least one rank")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        self.n = n
        self.exponent = exponent
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), exponent)
        self.probabilities = weights / weights.sum()

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw rank(s) according to the Zipf-like weights.

        Returns a plain ``int`` for ``size=None`` and an integer array
        otherwise — the scalar path is normalised so callers don't have
        to rely on implicit coercion of a 0-d numpy scalar.
        """
        ranks = rng.choice(self.n, size=size, p=self.probabilities)
        if size is None:
            return int(ranks)
        return ranks

    def split(self, total: int, rng: np.random.Generator) -> np.ndarray:
        """Split ``total`` items over the ranks (multinomial draw)."""
        if total < 0:
            raise ValueError("total must be non-negative")
        return rng.multinomial(total, self.probabilities)


@dataclass(frozen=True)
class ParetoLength:
    """Classic Pareto interval length, truncated to the attribute domain.

    Section 5.1 gives the interval-length parameters as ``(c, alpha)``
    (4, 1 for both price and volume): a classic Pareto law with scale
    ``c`` (the minimum length) and shape ``alpha``, i.e.
    ``L = c * U^(-1/alpha)`` for ``U ~ Uniform(0, 1]``.  With
    ``alpha = 1`` the untruncated mean diverges, so samples are capped at
    ``max_length`` (the attribute domains are only 21 wide); the
    truncated mean is then ``c * (1 + ln(max_length / c))``.
    """

    scale: float = 4.0
    shape: float = 1.0
    max_length: float = 21.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale (minimum length) must be positive")
        if self.shape <= 0:
            raise ValueError("shape must be positive")
        if self.max_length < self.scale:
            raise ValueError("max_length must be at least the scale")

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw interval length(s), capped at ``max_length``.

        Returns a plain ``float`` for ``size=None`` and a float array
        otherwise — the scalar path is normalised so callers don't have
        to rely on implicit coercion of a 0-d numpy scalar.
        """
        u = rng.random(size) if size is not None else rng.random()
        u = np.maximum(u, 1e-12)  # guard the U=0 pole
        raw = self.scale * np.power(u, -1.0 / self.shape)
        capped = np.minimum(raw, self.max_length)
        if size is None:
            return float(capped)
        return capped

    def truncated_mean(self) -> float:
        """Exact mean of the capped law (for tests and documentation).

        ``E[min(X, m)] = E[X; X < m] + m * P(X >= m)`` with
        ``P(X >= m) = (c/m)^a``.
        """
        import math

        c, a, m = self.scale, self.shape, self.max_length
        if m == c:
            return c
        tail = (c / m) ** a
        if a == 1.0:
            body = c * math.log(m / c)
        else:
            body = (a * c / (a - 1.0)) * (1.0 - (c / m) ** (a - 1.0))
        return body + m * tail


class GaussianMixture1D:
    """A one-dimensional mixture of normal components.

    Used both for the per-dimension publication distributions of section
    5.1 (1-, 4- and 9-mode mixtures are products of these) and the
    gaussian event model of section 3.
    """

    def __init__(
        self, components: Sequence[Tuple[float, float, float]]
    ) -> None:
        """``components`` is a sequence of ``(weight, mu, sigma)``."""
        if not components:
            raise ValueError("mixture needs at least one component")
        weights = np.array([w for w, _, _ in components], dtype=np.float64)
        if np.any(weights < 0):
            raise ValueError("component weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("component weights must not all be zero")
        self.weights = weights / total
        self.mus = np.array([mu for _, mu, _ in components], dtype=np.float64)
        self.sigmas = np.array(
            [sigma for _, _, sigma in components], dtype=np.float64
        )
        if np.any(self.sigmas <= 0):
            raise ValueError("component sigmas must be positive")

    @property
    def n_components(self) -> int:
        return len(self.weights)

    @staticmethod
    def single(mu: float, sigma: float) -> "GaussianMixture1D":
        return GaussianMixture1D([(1.0, mu, sigma)])

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw continuous samples from the mixture."""
        which = rng.choice(self.n_components, size=size, p=self.weights)
        return rng.normal(self.mus[which], self.sigmas[which])

    def lattice_pmf(self, dimension: Dimension) -> np.ndarray:
        """Probability of each lattice value after round-and-clip.

        A continuous sample ``x`` is rounded to the nearest integer and
        clipped into ``[lo, hi]``, so value ``v`` strictly inside the
        domain receives the mass of ``(v-0.5, v+0.5]`` and the two edge
        values absorb the corresponding tails.
        """
        values = np.arange(dimension.lo, dimension.hi + 1)
        pmf = np.zeros(len(values), dtype=np.float64)
        for weight, mu, sigma in zip(self.weights, self.mus, self.sigmas):
            for i, v in enumerate(values):
                lo = -math.inf if v == dimension.lo else v - 0.5
                hi = math.inf if v == dimension.hi else v + 0.5
                lo_cdf = 0.0 if lo == -math.inf else normal_cdf(lo, mu, sigma)
                hi_cdf = 1.0 if hi == math.inf else normal_cdf(hi, mu, sigma)
                pmf[i] += weight * (hi_cdf - lo_cdf)
        # numerical safety: the per-component masses already sum to one,
        # renormalise to absorb float error
        return pmf / pmf.sum()


class UniformLattice:
    """Uniform distribution over a dimension's lattice values."""

    def sample(
        self, rng: np.random.Generator, dimension: Dimension, size: int
    ) -> np.ndarray:
        return rng.integers(dimension.lo, dimension.hi + 1, size=size)

    def lattice_pmf(self, dimension: Dimension) -> np.ndarray:
        n = dimension.n_cells
        return np.full(n, 1.0 / n, dtype=np.float64)


@dataclass(frozen=True)
class IntervalDistribution:
    """The paper's parametric distribution over preference intervals.

    With probability ``q0`` the preference is a wildcard ``(-inf, +inf)``;
    with ``q1`` it is right-unbounded ``(n, +inf)`` with ``n ~ N(mu1,s1)``;
    with ``q2`` it is left-unbounded ``(-inf, n]`` with ``n ~ N(mu2,s2)``;
    otherwise it is a bounded interval whose centre is ``N(mu3, s3)`` and
    whose length follows the Pareto-like law.
    """

    q0: float
    q1: float
    q2: float
    mu1: float
    sigma1: float
    mu2: float
    sigma2: float
    mu3: float
    sigma3: float
    length: ParetoLength

    def __post_init__(self) -> None:
        for q in (self.q0, self.q1, self.q2):
            if not 0.0 <= q <= 1.0:
                raise ValueError("probabilities must lie in [0, 1]")
        if self.q0 + self.q1 + self.q2 > 1.0 + 1e-12:
            raise ValueError("q0 + q1 + q2 must not exceed 1")

    def sample(self, rng: np.random.Generator) -> Interval:
        """Draw one preference interval."""
        u = rng.random()
        if u < self.q0:
            return Interval.full()
        if u < self.q0 + self.q1:
            return Interval.greater_than(rng.normal(self.mu1, self.sigma1))
        if u < self.q0 + self.q1 + self.q2:
            return Interval.at_most(rng.normal(self.mu2, self.sigma2))
        center = rng.normal(self.mu3, self.sigma3)
        half = 0.5 * float(self.length.sample(rng))
        return Interval.make(center - half, center + half)
