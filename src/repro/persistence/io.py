"""Persistence for the expensive artefacts of the pipeline.

Topologies, subscription sets, hyper-cell sets and clusterings all take
non-trivial time to build at paper scale; a production deployment wants
to compute them once and reload them across runs (and ship a clustering
from the offline preprocessing stage to the online brokers).  Everything
is stored in a single ``.npz`` file: numpy arrays for the bulk data plus
one JSON-encoded metadata entry.  Ragged structures (stub membership,
hyper-cell id lists, no-loss member sets) are stored flattened with
offset arrays.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..aggregation import AggregateSet
from ..clustering import Clustering, NoLossResult
from ..geometry import Dimension, EventSpace, Rectangle
from ..grid import CellSet
from ..network import Graph, Topology
from ..online.queues import QueueConfig
from ..workload import Subscription, SubscriptionSet

__all__ = [
    "save_topology",
    "load_topology",
    "save_subscriptions",
    "load_subscriptions",
    "save_aggregates",
    "load_aggregates",
    "save_cell_set",
    "load_cell_set",
    "save_clustering",
    "load_clustering",
    "save_noloss_result",
    "load_noloss_result",
    "OnlineState",
    "save_online_state",
    "load_online_state",
    "ShardState",
    "save_shard_checkpoint",
    "load_shard_checkpoint",
    "FleetState",
    "save_fleet_state",
    "load_fleet_state",
]

_FORMAT_VERSION = 1


def _pack_ragged(lists: List[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten a list of int arrays into (flat, offsets)."""
    offsets = np.zeros(len(lists) + 1, dtype=np.int64)
    for i, arr in enumerate(lists):
        offsets[i + 1] = offsets[i] + len(arr)
    if offsets[-1] == 0:
        flat = np.empty(0, dtype=np.int64)
    else:
        flat = np.concatenate([np.asarray(a, dtype=np.int64) for a in lists])
    return flat, offsets


def _unpack_ragged(flat: np.ndarray, offsets: np.ndarray) -> List[np.ndarray]:
    return [
        flat[offsets[i] : offsets[i + 1]] for i in range(len(offsets) - 1)
    ]


def _space_meta(space: EventSpace) -> List[Dict]:
    return [
        {"name": d.name, "lo": d.lo, "hi": d.hi} for d in space.dimensions
    ]


def _space_from_meta(meta: List[Dict]) -> EventSpace:
    return EventSpace(
        [Dimension(d["name"], int(d["lo"]), int(d["hi"])) for d in meta]
    )


def _check_kind(meta: Dict, expected: str) -> None:
    kind = meta.get("kind")
    if kind != expected:
        raise ValueError(
            f"file holds a {kind!r} artefact, expected {expected!r}"
        )
    version = meta.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported format version {version}")


def _save(path, meta: Dict, **arrays) -> None:
    meta = dict(meta)
    meta["version"] = _FORMAT_VERSION
    np.savez_compressed(path, _meta=json.dumps(meta), **arrays)


def _load(path) -> Tuple[Dict, Dict[str, np.ndarray]]:
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["_meta"]))
        arrays = {key: data[key] for key in data.files if key != "_meta"}
    return meta, arrays


# ----------------------------------------------------------------------
# topology
# ----------------------------------------------------------------------
def save_topology(topology: Topology, path) -> None:
    """Persist a transit-stub topology (graph + role annotations)."""
    edges = np.array(
        [(u, v, c) for u, v, c in topology.graph.edges()], dtype=np.float64
    ).reshape(-1, 3)
    stub_flat, stub_offsets = _pack_ragged(
        [np.asarray(s, dtype=np.int64) for s in topology.stubs]
    )
    _save(
        path,
        {"kind": "topology", "n_nodes": topology.n_nodes},
        edges=edges,
        transit_block=np.asarray(topology.transit_block, dtype=np.int64),
        stub_of=np.asarray(topology.stub_of, dtype=np.int64),
        stub_flat=stub_flat,
        stub_offsets=stub_offsets,
        stub_block=np.asarray(topology.stub_block, dtype=np.int64),
        transit_nodes=np.asarray(topology.transit_nodes, dtype=np.int64),
    )


def load_topology(path) -> Topology:
    meta, arrays = _load(path)
    _check_kind(meta, "topology")
    graph = Graph(int(meta["n_nodes"]))
    for u, v, cost in arrays["edges"]:
        graph.add_edge(int(u), int(v), float(cost))
    topology = Topology(
        graph=graph,
        transit_block=arrays["transit_block"].tolist(),
        stub_of=arrays["stub_of"].tolist(),
        stubs=[
            s.tolist()
            for s in _unpack_ragged(
                arrays["stub_flat"], arrays["stub_offsets"]
            )
        ],
        stub_block=arrays["stub_block"].tolist(),
        transit_nodes=arrays["transit_nodes"].tolist(),
    )
    topology.validate()
    return topology


# ----------------------------------------------------------------------
# subscriptions
# ----------------------------------------------------------------------
def save_subscriptions(
    subscriptions: SubscriptionSet, path
) -> Optional[np.ndarray]:
    """Persist a rectangle subscription set (with its event space).

    A set that saw online churn (deactivated subscribers hold sentinel
    never-matching bounds) is compacted first: only the active
    subscriptions are written, renumbered densely, so the file always
    round-trips through :func:`load_subscriptions`.

    Returns the old→new subscriber id mapping of that compaction
    (departed ids map to ``-1``), or ``None`` when no compaction was
    needed.  A clustering saved alongside must be renumbered with the
    same mapping — pass it to :func:`save_clustering` as
    ``subscriber_mapping`` — or the restored pair's subscriber columns
    will be misaligned.
    """
    mapping: Optional[np.ndarray] = None
    if subscriptions.n_active_subscribers != subscriptions.n_subscribers:
        subscriptions, mapping = subscriptions.compact()
    los, his = subscriptions.bounds()
    owners = np.array(
        [s.subscriber for s in subscriptions.subscriptions], dtype=np.int64
    )
    nodes = np.array(
        [s.node for s in subscriptions.subscriptions], dtype=np.int64
    )
    _save(
        path,
        {"kind": "subscriptions", "space": _space_meta(subscriptions.space)},
        los=los,
        his=his,
        owners=owners,
        nodes=nodes,
    )
    return mapping


def load_subscriptions(path) -> SubscriptionSet:
    meta, arrays = _load(path)
    _check_kind(meta, "subscriptions")
    space = _space_from_meta(meta["space"])
    subscriptions = [
        Subscription(
            int(owner),
            int(node),
            Rectangle.from_bounds(lo, hi),
        )
        for owner, node, lo, hi in zip(
            arrays["owners"], arrays["nodes"], arrays["los"], arrays["his"]
        )
    ]
    return SubscriptionSet(space, subscriptions)


# ----------------------------------------------------------------------
# subscription aggregates
# ----------------------------------------------------------------------
def save_aggregates(aggregates: AggregateSet, path) -> None:
    """Persist a subscription aggregate structure (checkpointing the
    offline aggregation pass so online brokers can restore it without
    re-running the containment analysis)."""
    member_flat, member_offsets = _pack_ragged(list(aggregates.members))
    owner_flat, owner_offsets = _pack_ragged(list(aggregates.owners))
    _save(
        path,
        {
            "kind": "aggregates",
            "n_subscriptions": aggregates.n_subscriptions,
        },
        los=aggregates.los,
        his=aggregates.his,
        member_flat=member_flat,
        member_offsets=member_offsets,
        owner_flat=owner_flat,
        owner_offsets=owner_offsets,
        agg_of_row=aggregates.agg_of_row,
        multiplicity=aggregates.multiplicity,
        parent=aggregates.parent,
    )


def load_aggregates(path) -> AggregateSet:
    meta, arrays = _load(path)
    _check_kind(meta, "aggregates")
    return AggregateSet(
        los=arrays["los"],
        his=arrays["his"],
        members=tuple(
            _unpack_ragged(arrays["member_flat"], arrays["member_offsets"])
        ),
        owners=tuple(
            _unpack_ragged(arrays["owner_flat"], arrays["owner_offsets"])
        ),
        agg_of_row=arrays["agg_of_row"],
        multiplicity=arrays["multiplicity"],
        parent=arrays["parent"],
        n_subscriptions=int(meta["n_subscriptions"]),
    )


# ----------------------------------------------------------------------
# cell sets
# ----------------------------------------------------------------------
def save_cell_set(cells: CellSet, path) -> None:
    """Persist a hyper-cell set (membership bit-packed).

    Aggregate-level sets (column ``weights`` set) persist the weights
    alongside and restore as weighted sets.
    """
    flat, offsets = _pack_ragged(cells.cell_ids)
    extra = {}
    if cells.weights is not None:
        extra["weights"] = np.asarray(cells.weights, dtype=np.int64)
    _save(
        path,
        {
            "kind": "cells",
            "space": _space_meta(cells.space),
            "n_subscribers": cells.n_subscribers,
        },
        membership=np.packbits(cells.membership, axis=1),
        probs=cells.probs,
        cell_flat=flat,
        cell_offsets=offsets,
        hypercell_of_cell=cells.hypercell_of_cell,
        **extra,
    )


def load_cell_set(path) -> CellSet:
    meta, arrays = _load(path)
    _check_kind(meta, "cells")
    space = _space_from_meta(meta["space"])
    n_subscribers = int(meta["n_subscribers"])
    membership = np.unpackbits(
        arrays["membership"], axis=1, count=n_subscribers
    ).astype(bool)
    return CellSet(
        space=space,
        membership=membership,
        probs=arrays["probs"],
        cell_ids=_unpack_ragged(
            arrays["cell_flat"], arrays["cell_offsets"]
        ),
        hypercell_of_cell=arrays["hypercell_of_cell"],
        weights=arrays.get("weights"),
    )


# ----------------------------------------------------------------------
# clusterings
# ----------------------------------------------------------------------
def save_clustering(
    clustering: Clustering,
    path,
    subscriber_mapping: Optional[np.ndarray] = None,
) -> None:
    """Persist a clustering together with its cell set.

    ``subscriber_mapping`` is the old→new id map returned by
    :func:`save_subscriptions` when it compacted a churned set (``-1``
    marks departed ids).  Passing it renumbers the membership columns
    the same way, so the two files restore to an aligned pair.  The
    mapping preserves relative id order, so the surviving columns are
    simply selected in place.
    """
    cells = clustering.cells
    membership = cells.membership
    n_subscribers = cells.n_subscribers
    if subscriber_mapping is not None:
        if cells.weights is not None:
            raise ValueError(
                "aggregate-level clusterings (weighted columns) cannot be "
                "renumbered by subscriber id"
            )
        mapping = np.asarray(subscriber_mapping, dtype=np.int64)
        if mapping.shape != (n_subscribers,):
            raise ValueError(
                "subscriber_mapping must cover every membership column"
            )
        membership = np.ascontiguousarray(membership[:, mapping >= 0])
        n_subscribers = membership.shape[1]
    flat, offsets = _pack_ragged(cells.cell_ids)
    extra = {}
    if cells.weights is not None:
        extra["weights"] = np.asarray(cells.weights, dtype=np.int64)
    _save(
        path,
        {
            "kind": "clustering",
            "space": _space_meta(cells.space),
            "n_subscribers": n_subscribers,
        },
        membership=np.packbits(membership, axis=1),
        probs=cells.probs,
        cell_flat=flat,
        cell_offsets=offsets,
        hypercell_of_cell=cells.hypercell_of_cell,
        assignment=clustering.assignment,
        **extra,
    )


def load_clustering(path) -> Clustering:
    meta, arrays = _load(path)
    _check_kind(meta, "clustering")
    space = _space_from_meta(meta["space"])
    n_subscribers = int(meta["n_subscribers"])
    membership = np.unpackbits(
        arrays["membership"], axis=1, count=n_subscribers
    ).astype(bool)
    cells = CellSet(
        space=space,
        membership=membership,
        probs=arrays["probs"],
        cell_ids=_unpack_ragged(
            arrays["cell_flat"], arrays["cell_offsets"]
        ),
        hypercell_of_cell=arrays["hypercell_of_cell"],
        weights=arrays.get("weights"),
    )
    return Clustering(cells, arrays["assignment"])


# ----------------------------------------------------------------------
# no-loss results
# ----------------------------------------------------------------------
def save_noloss_result(result: NoLossResult, path) -> None:
    """Persist a No-Loss region list with its group index."""
    member_flat, member_offsets = _pack_ragged(result.members)
    group_flat, group_offsets = _pack_ragged(result.group_members)
    _save(
        path,
        {"kind": "noloss", "space": _space_meta(result.space)},
        los=result.los,
        his=result.his,
        weights=result.weights,
        member_flat=member_flat,
        member_offsets=member_offsets,
        group_of=result.group_of,
        group_flat=group_flat,
        group_offsets=group_offsets,
    )


# ----------------------------------------------------------------------
# online runtime checkpoints
# ----------------------------------------------------------------------
class OnlineState:
    """A restored online-runtime checkpoint.

    Carries the maintainer's drift-accounting vectors and counters plus
    the service's queue configurations; :meth:`apply` resumes a
    :class:`~repro.online.maintainer.ClusterMaintainer` whose broker
    already holds the matching clustering and subscription set (saved
    separately via :func:`save_clustering` / :func:`save_subscriptions`).
    """

    def __init__(
        self,
        cell_group: np.ndarray,
        group_mass: np.ndarray,
        fit_waste: float,
        current_waste: float,
        counters: Dict[str, int],
        queues: Dict[str, QueueConfig],
    ) -> None:
        self.cell_group = cell_group
        self.group_mass = group_mass
        self.fit_waste = fit_waste
        self.current_waste = current_waste
        self.counters = counters
        self.queues = queues

    def apply(self, maintainer) -> None:
        """Resume ``maintainer`` from this checkpoint."""
        maintainer.restore(
            self.cell_group,
            self.group_mass,
            self.fit_waste,
            self.current_waste,
            **self.counters,
        )


def save_online_state(maintainer, path, queues=None) -> None:
    """Persist a maintainer's drift state (+ optional queue configs).

    ``queues`` maps stream names to
    :class:`~repro.online.queues.QueueConfig`; pass the service's
    configuration so a restart reproduces its admission behaviour.
    """
    arrays = maintainer.state_arrays()
    queue_meta = {
        name: {
            "capacity": cfg.capacity,
            "policy": cfg.policy,
            "rate": cfg.rate,
            "burst": cfg.burst,
        }
        for name, cfg in (queues or {}).items()
    }
    _save(
        path,
        {
            "kind": "online",
            "fit_waste": maintainer.fit_waste,
            "current_waste": maintainer.current_waste,
            "counters": {
                "joins": maintainer.joins,
                "leaves": maintainer.leaves,
                "unassigned_joins": maintainer.unassigned_joins,
                "captures": maintainer.captures,
            },
            "queues": queue_meta,
        },
        cell_group=np.asarray(arrays["cell_group"], dtype=np.int64),
        group_mass=np.asarray(arrays["group_mass"], dtype=np.float64),
    )


def load_online_state(path) -> OnlineState:
    meta, arrays = _load(path)
    _check_kind(meta, "online")
    queues = {
        name: QueueConfig(
            capacity=int(entry["capacity"]),
            policy=str(entry["policy"]),
            rate=entry["rate"],
            burst=entry["burst"],
        )
        for name, entry in meta.get("queues", {}).items()
    }
    return OnlineState(
        cell_group=arrays["cell_group"],
        group_mass=arrays["group_mass"],
        fit_waste=float(meta["fit_waste"]),
        current_waste=float(meta["current_waste"]),
        counters={k: int(v) for k, v in meta["counters"].items()},
        queues=queues,
    )


# ----------------------------------------------------------------------
# fleet checkpoints
# ----------------------------------------------------------------------
class ShardState:
    """A restored fleet-shard checkpoint.

    Extends the single-broker :class:`OnlineState` surface with the
    shard's fleet identity: its budget slice ``k``, its cross-shard
    policy, the fleet-wide gid → local-handle registry, the match-only
    (forward) gid set, the exact token-bucket states and the virtual
    clock — everything a restarted shard needs to resume mid-fleet.
    """

    def __init__(
        self,
        shard: int,
        k: int,
        policy: str,
        online: OnlineState,
        busy_until: float,
        token_states: Tuple[
            Tuple[str, Tuple[int, int], Tuple[int, int]], ...
        ],
        handle_of_gid: Dict[int, int],
        forward_gids: frozenset,
    ) -> None:
        self.shard = shard
        self.k = k
        self.policy = policy
        self.online = online
        self.busy_until = busy_until
        self.token_states = token_states
        self.handle_of_gid = handle_of_gid
        self.forward_gids = forward_gids

    def apply(self, service) -> None:
        """Resume a :class:`~repro.fleet.runtime.ShardService`."""
        self.online.apply(service.maintainer)
        service.busy_until = float(self.busy_until)
        service.handle_of_gid = dict(self.handle_of_gid)
        service.forward_gids = set(self.forward_gids)
        for handle in (
            self.handle_of_gid[gid] for gid in sorted(self.forward_gids)
        ):
            service._track_forward(handle)
        for name, tokens, last_refill in self.token_states:
            if name in service._queues:
                service._queues[name].restore_token_state(
                    tokens, last_refill
                )


def save_shard_checkpoint(path, shard, k, maintainer, service) -> None:
    """Persist one fleet shard's end state (single ``.npz``).

    Token-bucket numerators/denominators are exact integers (JSON keeps
    arbitrary precision), so a restore resumes admission byte-exactly.
    """
    arrays = maintainer.state_arrays()
    gids = np.asarray(sorted(service.handle_of_gid), dtype=np.int64)
    handles = np.asarray(
        [service.handle_of_gid[int(g)] for g in gids], dtype=np.int64
    )
    token_meta = [
        {
            "queue": name,
            "tokens": list(queue.token_state()[0]),
            "last_refill": list(queue.token_state()[1]),
        }
        for name, queue in sorted(service._queues.items())
    ]
    _save(
        path,
        {
            "kind": "fleet-shard",
            "shard": int(shard),
            "k": int(k),
            "policy": service.policy,
            "fit_waste": maintainer.fit_waste,
            "current_waste": maintainer.current_waste,
            "counters": {
                "joins": maintainer.joins,
                "leaves": maintainer.leaves,
                "unassigned_joins": maintainer.unassigned_joins,
                "captures": maintainer.captures,
            },
            "forward": {
                "joins": service.forward_joins,
                "leaves": service.forward_leaves,
                "deliveries": service.forwards,
            },
            "busy_until": service.busy_until,
            "tokens": token_meta,
        },
        cell_group=np.asarray(arrays["cell_group"], dtype=np.int64),
        group_mass=np.asarray(arrays["group_mass"], dtype=np.float64),
        gids=gids,
        handles=handles,
        forward_gids=np.asarray(
            sorted(service.forward_gids), dtype=np.int64
        ),
    )


def load_shard_checkpoint(path) -> ShardState:
    meta, arrays = _load(path)
    _check_kind(meta, "fleet-shard")
    online = OnlineState(
        cell_group=arrays["cell_group"],
        group_mass=arrays["group_mass"],
        fit_waste=float(meta["fit_waste"]),
        current_waste=float(meta["current_waste"]),
        counters={k: int(v) for k, v in meta["counters"].items()},
        queues={},
    )
    token_states = tuple(
        (
            str(entry["queue"]),
            tuple(int(v) for v in entry["tokens"]),
            tuple(int(v) for v in entry["last_refill"]),
        )
        for entry in meta.get("tokens", [])
    )
    return ShardState(
        shard=int(meta["shard"]),
        k=int(meta["k"]),
        policy=str(meta["policy"]),
        online=online,
        busy_until=float(meta["busy_until"]),
        token_states=token_states,
        handle_of_gid={
            int(g): int(h)
            for g, h in zip(arrays["gids"], arrays["handles"])
        },
        forward_gids=frozenset(
            int(g) for g in arrays["forward_gids"]
        ),
    )


class FleetState:
    """A restored fleet manifest: the shard map parameters, the final K
    split and the coordinator's rebalance count."""

    def __init__(
        self,
        n_shards: int,
        strategy: str,
        vnodes: int,
        split: List[int],
        rebalances: int,
        epochs: int,
        cell_to_shard: np.ndarray,
    ) -> None:
        self.n_shards = n_shards
        self.strategy = strategy
        self.vnodes = vnodes
        self.split = split
        self.rebalances = rebalances
        self.epochs = epochs
        self.cell_to_shard = cell_to_shard


def save_fleet_state(path, shard_map, split, rebalances, epochs) -> None:
    """Persist the fleet-level manifest next to the shard checkpoints.

    The cell-ownership vector is derivable from the map parameters, but
    storing it makes the file self-verifying: a loader can rebuild the
    map and compare bit-for-bit.
    """
    _save(
        path,
        {
            "kind": "fleet",
            "map": shard_map.as_dict(),
            "split": [int(k) for k in split],
            "rebalances": int(rebalances),
            "epochs": int(epochs),
        },
        cell_to_shard=np.asarray(shard_map.cell_to_shard, dtype=np.int64),
    )


def load_fleet_state(path) -> FleetState:
    meta, arrays = _load(path)
    _check_kind(meta, "fleet")
    map_meta = meta["map"]
    return FleetState(
        n_shards=int(map_meta["n_shards"]),
        strategy=str(map_meta["strategy"]),
        vnodes=int(map_meta["vnodes"]),
        split=[int(k) for k in meta["split"]],
        rebalances=int(meta["rebalances"]),
        epochs=int(meta["epochs"]),
        cell_to_shard=arrays["cell_to_shard"],
    )


def load_noloss_result(path) -> NoLossResult:
    meta, arrays = _load(path)
    _check_kind(meta, "noloss")
    return NoLossResult(
        space=_space_from_meta(meta["space"]),
        los=arrays["los"],
        his=arrays["his"],
        weights=arrays["weights"],
        members=_unpack_ragged(
            arrays["member_flat"], arrays["member_offsets"]
        ),
        group_of=arrays["group_of"],
        group_members=_unpack_ragged(
            arrays["group_flat"], arrays["group_offsets"]
        ),
    )
