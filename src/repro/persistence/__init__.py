"""Save/load for the pipeline's expensive artefacts (.npz format):
topologies, subscription sets, hyper-cell sets, clusterings and
No-Loss region lists."""

from .io import (
    load_cell_set,
    load_clustering,
    load_noloss_result,
    load_subscriptions,
    load_topology,
    save_cell_set,
    save_clustering,
    save_noloss_result,
    save_subscriptions,
    save_topology,
)

__all__ = [
    "load_cell_set",
    "load_clustering",
    "load_noloss_result",
    "load_subscriptions",
    "load_topology",
    "save_cell_set",
    "save_clustering",
    "save_noloss_result",
    "save_subscriptions",
    "save_topology",
]
