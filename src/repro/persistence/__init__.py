"""Save/load for the pipeline's expensive artefacts (.npz format):
topologies, subscription sets, subscription aggregates, hyper-cell
sets, clusterings, No-Loss region lists and online-runtime
checkpoints."""

from .io import (
    FleetState,
    OnlineState,
    ShardState,
    load_aggregates,
    load_cell_set,
    load_clustering,
    load_fleet_state,
    load_noloss_result,
    load_online_state,
    load_shard_checkpoint,
    load_subscriptions,
    load_topology,
    save_aggregates,
    save_cell_set,
    save_clustering,
    save_fleet_state,
    save_noloss_result,
    save_online_state,
    save_shard_checkpoint,
    save_subscriptions,
    save_topology,
)

__all__ = [
    "FleetState",
    "OnlineState",
    "ShardState",
    "load_aggregates",
    "load_cell_set",
    "load_clustering",
    "load_fleet_state",
    "load_noloss_result",
    "load_online_state",
    "load_shard_checkpoint",
    "load_subscriptions",
    "load_topology",
    "save_aggregates",
    "save_cell_set",
    "save_clustering",
    "save_fleet_state",
    "save_noloss_result",
    "save_online_state",
    "save_shard_checkpoint",
    "save_subscriptions",
    "save_topology",
]
