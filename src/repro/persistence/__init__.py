"""Save/load for the pipeline's expensive artefacts (.npz format):
topologies, subscription sets, subscription aggregates, hyper-cell
sets, clusterings, No-Loss region lists and online-runtime
checkpoints."""

from .io import (
    OnlineState,
    load_aggregates,
    load_cell_set,
    load_clustering,
    load_noloss_result,
    load_online_state,
    load_subscriptions,
    load_topology,
    save_aggregates,
    save_cell_set,
    save_clustering,
    save_noloss_result,
    save_online_state,
    save_subscriptions,
    save_topology,
)

__all__ = [
    "OnlineState",
    "load_aggregates",
    "load_cell_set",
    "load_clustering",
    "load_noloss_result",
    "load_online_state",
    "load_subscriptions",
    "load_topology",
    "save_aggregates",
    "save_cell_set",
    "save_clustering",
    "save_noloss_result",
    "save_online_state",
    "save_subscriptions",
    "save_topology",
]
