"""Per-event causal tracing: the flight recorder.

Aggregate counters answer "how many events were shed"; the flight
recorder answers "where did publication #4812 spend its time and why
was it shed".  Every event admitted by the online
:class:`~repro.online.service.BrokerService` (and every publication a
chaos replay prices) carries an **event id**, and each hop of its life
appends one :class:`StageRecord`:

``enqueue``
    admission into a bounded stream queue (stream, queue depth);
``shed``
    the event was refused or evicted, with the reason
    (``rate`` / ``capacity`` / ``priority``);
``queue_wait``
    virtual seconds between arrival and service start;
``match``
    the matcher's verdict (interested count, groups used, unicast legs);
``join`` / ``leave``
    incremental maintainer work the event triggered (group chosen,
    drift after);
``rebuild``
    a drift- or churn-triggered refit the event's service tick fired;
``dispatch``
    the delivery decision (mode, cost);
``deliver``
    delivery outcome per multicast group on the degraded path, one
    aggregate record on the healthy path;
``unicast``
    unicast top-up / fallback legs;
``outcome``
    the event's final classification (delivered / degraded / lost,
    end-to-end virtual latency);
``fault``
    a fault event applied to the topology.

Everything is stamped on the **virtual clock**, so a seeded run's
flight log is byte-identical across repetitions — and across worker
counts, because worker logs are folded back in plan order through
:meth:`FlightRecorder.ingest` (the same merge discipline as
:meth:`repro.obs.Tracer.ingest`).

The recorder starts *disabled*: a stage call then costs one attribute
check, and the "current event" plumbing (:meth:`event`) is a no-op, so
recording on vs off cannot perturb any simulation result — the recorder
only ever observes.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["StageRecord", "FlightRecorder", "stage_latencies"]

#: canonical stage ordering for reports (unknown stages sort last)
STAGE_ORDER = (
    "enqueue",
    "shed",
    "queue_wait",
    "match",
    "join",
    "leave",
    "rebuild",
    "dispatch",
    "overlay_build",
    "overlay_repair",
    "deliver",
    "unicast",
    "outcome",
    "fault",
)


class StageRecord:
    """One hop in one event's life, on the virtual clock."""

    __slots__ = ("event_id", "stage", "t", "attrs")

    def __init__(
        self, event_id: int, stage: str, t: float, attrs: Dict[str, object]
    ) -> None:
        self.event_id = event_id
        self.stage = stage
        self.t = t
        self.attrs = attrs

    def as_dict(self) -> Dict:
        return {
            "event": self.event_id,
            "stage": self.stage,
            "t": self.t,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StageRecord({self.event_id}, {self.stage!r}, t={self.t:g})"


class FlightRecorder:
    """Records per-event stage chains; near-free while disabled.

    Event ids are supplied by the caller (the online service uses the
    event's deterministic position in the sorted input stream; the
    chaos runner uses the publication index), so a seeded run assigns
    the same ids no matter how it is executed.  Layers below the
    service (broker, maintainer, matcher) do not know event ids — they
    record against the *current* event, scoped by :meth:`event`.
    """

    #: Records are stored in :attr:`buf` as raw ``(event_id, stage, t,
    #: attrs)`` tuples and materialised into :class:`StageRecord`
    #: objects only on read.  :meth:`record` / :meth:`stage` are the
    #: convenience API; per-event hot paths (the service's drain loop,
    #: the broker's healthy publish path) skip the call overhead and
    #: append tuples to :attr:`buf` directly, guarded by
    #: :attr:`enabled` / :attr:`active` — that raw-append protocol is
    #: what keeps recording within the soak's overhead budget.
    #: Appends never take the lock: a CPython ``list.append`` is atomic
    #: and the recording side is a single thread (the service consumer /
    #: the sequential chaos replay).  The lock guards the *compound*
    #: mutations (clear, take_chain, ingest) and snapshot reads against
    #: each other; ``buf`` is only ever mutated in place so direct
    #: references stay valid across :meth:`clear`.

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = enabled
        self._lock = threading.Lock()
        #: raw record buffer: ``(event_id, stage, t, attrs)`` tuples
        self.buf: List[Tuple[int, str, float, Dict[str, object]]] = []
        #: id and virtual time of the event scoped by :meth:`event`
        #: (raw appends against the current event read these directly)
        self.current_event: Optional[int] = None
        self.now: float = 0.0
        #: True when stages recorded now would land on a current event.
        #: A plain attribute, maintained by :meth:`event` scopes and
        #: enable/disable, so instrumented layers can skip *preparing*
        #: attribute payloads (e.g. a per-group loop) with one fetch.
        self.active = False

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self, clear: bool = True) -> "FlightRecorder":
        if clear:
            self.clear()
        self._enabled = True
        self.active = self.current_event is not None
        return self

    def disable(self) -> "FlightRecorder":
        self._enabled = False
        self.active = False
        return self

    def clear(self) -> None:
        with self._lock:
            self.buf.clear()

    def __len__(self) -> int:
        return len(self.buf)

    # ------------------------------------------------------------------
    def record(
        self, event_id: int, stage: str, t: float, **attrs: object
    ) -> None:
        """Append one stage record for an explicit event id."""
        if self._enabled:
            self.buf.append((event_id, stage, t, attrs))

    def event(self, event_id: int, now: float) -> "_EventScope":
        """Scope the *current* event for layers that don't know ids.

        Usage (the service, around one event's processing)::

            with recorder.event(seq, completion):
                broker.publish(...)   # broker stages land on `seq`

        Nested scopes are not supported (the service is single-consumer
        and the chaos replay is sequential); the scope is a plain reset
        on exit.
        """
        return _EventScope(self, event_id, now)

    def stage(self, stage: str, **attrs: object) -> None:
        """Record a stage against the current event (no-op outside a
        scope or while disabled) at the scope's virtual time."""
        if self.active:
            self.buf.append((self.current_event, stage, self.now, attrs))

    # ------------------------------------------------------------------
    def records(self) -> List[StageRecord]:
        """Snapshot of the recorded stages, in recording order."""
        with self._lock:
            return [StageRecord(*entry) for entry in self.buf]

    def as_dicts(self) -> List[Dict]:
        with self._lock:
            return [
                {"event": eid, "stage": stage, "t": t, "attrs": dict(attrs)}
                for eid, stage, t, attrs in self.buf
            ]

    def chain(self, event_id: int) -> List[StageRecord]:
        """The stage chain of one event, in recording order."""
        with self._lock:
            return [
                StageRecord(*entry)
                for entry in self.buf
                if entry[0] == event_id
            ]

    def take_chain(self, event_id: int) -> List[Dict]:
        """Remove and return one event's chain as plain dicts.

        The chaos runner uses this to move a finished publication's
        cause chain into the degradation report without letting the
        recorder grow across cells.
        """
        with self._lock:
            taken = [r for r in self.buf if r[0] == event_id]
            if taken:
                self.buf[:] = [
                    r for r in self.buf if r[0] != event_id
                ]
        return [
            {"event": eid, "stage": stage, "t": t, "attrs": dict(attrs)}
            for eid, stage, t, attrs in taken
        ]

    def ingest(
        self, records: Iterable[Mapping], remap: bool = True
    ) -> List[StageRecord]:
        """Fold another recorder's exported records into this one.

        ``records`` are :meth:`StageRecord.as_dict` dictionaries —
        typically a worker process's flight log shipped back by the
        parallel sweep engine.  With ``remap`` (the default) event ids
        are renumbered by first appearance so logs merged from several
        workers stay collision-free; ingesting batches in **plan order**
        therefore yields the same merged log as a serial run.  Works
        while disabled — merging is bookkeeping, not recording.
        """
        id_map: Dict[int, int] = {}
        ingested: List[Tuple[int, str, float, Dict[str, object]]] = []
        with self._lock:
            next_id = 1 + max(
                (r[0] for r in self.buf), default=-1
            )
            for record in records:
                old = int(record.get("event", 0))
                if remap:
                    if old not in id_map:
                        id_map[old] = next_id
                        next_id += 1
                    new = id_map[old]
                else:
                    new = old
                ingested.append(
                    (
                        new,
                        str(record.get("stage", "?")),
                        float(record.get("t", 0.0)),
                        dict(record.get("attrs") or {}),
                    )
                )
            self.buf.extend(ingested)
        return [StageRecord(*entry) for entry in ingested]


class _EventScope:
    """Context manager binding a recorder's current event id + time."""

    __slots__ = ("_recorder", "_event_id", "_now")

    def __init__(
        self, recorder: FlightRecorder, event_id: int, now: float
    ) -> None:
        self._recorder = recorder
        self._event_id = event_id
        self._now = now

    def __enter__(self) -> FlightRecorder:
        recorder = self._recorder
        if recorder._enabled:
            recorder.current_event = self._event_id
            recorder.now = self._now
            recorder.active = True
        return recorder

    def __exit__(self, *exc_info) -> bool:
        self._recorder.current_event = None
        self._recorder.active = False
        return False


def stage_latencies(
    records: Iterable,
    key: Callable[[StageRecord], object] = lambda r: r.stage,
) -> Dict[object, List[float]]:
    """Group the ``seconds`` attribute of stage records by ``key``.

    ``records`` may be :class:`StageRecord` objects or their
    :meth:`~StageRecord.as_dict` form.  Only records carrying a
    ``seconds`` attribute contribute (the duration-bearing stages:
    ``queue_wait`` and ``outcome``); the result maps each key to its
    observed virtual durations in record order — ready for quantile
    estimation in the waterfall report.
    """
    out: Dict[object, List[float]] = {}
    for record in records:
        if isinstance(record, Mapping):
            record = StageRecord(
                int(record.get("event", 0)),
                str(record.get("stage", "?")),
                float(record.get("t", 0.0)),
                dict(record.get("attrs") or {}),
            )
        seconds = record.attrs.get("seconds")
        if seconds is None:
            continue
        out.setdefault(key(record), []).append(float(seconds))
    return out
