"""Declarative service-level objectives over sliding virtual-time windows.

An :class:`Objective` names a signal the online runtime emits, a
statistic over a sliding window of *virtual* seconds, and a threshold::

    {"name": "pub-latency-p95", "signal": "latency", "stat": "p95",
     "threshold": 0.5, "window": 100.0, "stream": "pub"}

The :class:`SloEngine` ingests raw observations ``(signal, t, value)``
as the service produces them, maintains one sliding window per
objective, and emits an :class:`SloBreach` on each *rising edge* — the
first observation at which the windowed statistic crosses the
threshold; the objective must recover (drop back under) before it can
breach again.  Rising-edge emission keeps breach streams short and —
because everything runs on the virtual clock over a deterministic
event stream — byte-identical across runs and worker counts.

Signals (all virtual-time):

``latency``
    end-to-end seconds from arrival to completion, per event;
``queue_wait``
    seconds from arrival to service start, per event;
``shed_rate``
    one 0/1 observation per arrival (1 = shed), so a windowed *mean*
    is the shed fraction;
``waste_inflation``
    the maintainer's current-waste / fit-waste ratio, sampled per
    membership change;
``lost_rate``
    per publication, lost deliveries / intended deliveries, so a
    windowed *mean* is the lost-delivery fraction.

Breaches can feed adaptation: an objective with ``feed_drift`` true
hands each breach to the engine's ``drift_sink`` (wired by the service
to :meth:`RebuildScheduler.note_drift` through the broker), turning an
alert into a rebuild trigger — measured telemetry driving adaptation.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "SIGNALS",
    "STATS",
    "Objective",
    "SloBreach",
    "SloEngine",
    "load_slo_spec",
]

SIGNALS = (
    "latency",
    "queue_wait",
    "shed_rate",
    "waste_inflation",
    "lost_rate",
)

STATS = ("mean", "max", "p50", "p95", "p99")


@dataclass(frozen=True)
class Objective:
    """One declarative objective: stat(signal over window) vs threshold."""

    name: str
    signal: str
    stat: str
    threshold: float
    window: float
    stream: Optional[str] = None
    min_count: int = 1
    feed_drift: bool = False

    def __post_init__(self) -> None:
        if self.signal not in SIGNALS:
            raise ValueError(
                f"unknown signal {self.signal!r}; expected one of {SIGNALS}"
            )
        if self.stat not in STATS:
            raise ValueError(
                f"unknown stat {self.stat!r}; expected one of {STATS}"
            )
        if not (math.isfinite(self.threshold)):
            raise ValueError("threshold must be finite")
        if not (math.isfinite(self.window) and self.window > 0):
            raise ValueError("window must be a positive virtual duration")
        if self.min_count < 1:
            raise ValueError("min_count must be at least 1")

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "signal": self.signal,
            "stat": self.stat,
            "threshold": self.threshold,
            "window": self.window,
            "stream": self.stream,
            "min_count": self.min_count,
            "feed_drift": self.feed_drift,
        }


@dataclass(frozen=True)
class SloBreach:
    """A rising-edge threshold crossing of one objective."""

    time: float
    objective: str
    signal: str
    stat: str
    value: float
    threshold: float
    window_count: int

    def as_dict(self) -> Dict:
        return {
            "time": self.time,
            "objective": self.objective,
            "signal": self.signal,
            "stat": self.stat,
            "value": self.value,
            "threshold": self.threshold,
            "window_count": self.window_count,
        }


#: quantile stats as integer rank fractions: index = ceil(q*n) - 1
#: computed as (num*n + den-1)//den - 1, all-integer on the hot path
_QUANTILE_RANKS = {"p50": (50, 100), "p95": (95, 100), "p99": (99, 100)}


class _Tracked:
    """One objective's live state: its sliding window (deque for
    expiry, sorted list for O(log n) quantiles, running sum for the
    mean) plus the objective's fields cached as plain slots.

    :meth:`SloEngine.observe` runs per event on the service hot path,
    so the window is folded into this object and the dataclass fields
    are denormalised — one attribute hop each, no method calls beyond
    ``insort``.
    """

    __slots__ = (
        "objective", "breached",
        "stream", "horizon", "min_count", "threshold", "feed_drift",
        "stat_name", "rank", "entries", "sorted_values", "total",
    )

    def __init__(self, objective: Objective) -> None:
        self.objective = objective
        self.breached = False
        self.stream = objective.stream
        self.horizon = objective.window
        self.min_count = objective.min_count
        self.threshold = objective.threshold
        self.feed_drift = objective.feed_drift
        self.stat_name = objective.stat
        self.rank = _QUANTILE_RANKS.get(objective.stat)
        self.entries: Deque[Tuple[float, float]] = deque()
        self.sorted_values: List[float] = []
        self.total = 0.0

    def stat(self) -> float:
        """The windowed statistic over the current (non-empty) window."""
        values = self.sorted_values
        n = len(values)
        if self.rank is not None:
            num, den = self.rank
            return values[max(0, (num * n + den - 1) // den - 1)]
        if self.stat_name == "mean":
            return self.total / n
        return values[-1]

    def __len__(self) -> int:
        return len(self.entries)


class SloEngine:
    """Evaluates a set of objectives over a stream of observations.

    ``drift_sink`` (optional) receives each breach whose objective set
    ``feed_drift`` — the service binds it to the broker's drift
    notification so SLO alerts become adaptation signals.

    Evaluation is split by role, the way alerting pipelines keep off
    the data path.  Objectives with ``feed_drift`` must influence the
    run *while it executes*, so they evaluate inline on every
    observation.  Alert-only objectives evaluate on a **deferred
    replay** of the buffered observation stream, triggered the first
    time breaches or summaries are read — the hot path pays one list
    append per observation.  The replay is a pure function of the
    buffered ``(signal, t, value, stream)`` tuples, so the breach
    output is byte-identical to inline evaluation; the merged breach
    list is ordered by ``(time, objective)`` either way.
    """

    def __init__(
        self,
        objectives: Iterable[Objective],
        drift_sink: Optional[Callable[[SloBreach], None]] = None,
    ) -> None:
        self.objectives = list(objectives)
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError("objective names must be unique")
        self.drift_sink = drift_sink
        self._breaches: List[SloBreach] = []
        self._buffer: List[
            Tuple[str, float, float, Optional[str]]
        ] = []
        self._replayed = 0  # buffer prefix already seen by the replay
        self._by_signal: Dict[str, List[_Tracked]] = {}
        self._inline: Dict[str, List[_Tracked]] = {}
        self._deferred: Dict[str, List[_Tracked]] = {}
        for objective in self.objectives:
            entry = _Tracked(objective)
            self._by_signal.setdefault(objective.signal, []).append(entry)
            target = self._inline if objective.feed_drift else self._deferred
            target.setdefault(objective.signal, []).append(entry)

    # ------------------------------------------------------------------
    @property
    def breaches(self) -> List[SloBreach]:
        """All breaches so far, ordered by ``(time, objective)``."""
        self._replay_deferred()
        return self._breaches

    def observe(
        self,
        signal: str,
        t: float,
        value: float,
        stream: Optional[str] = None,
    ) -> None:
        """Feed one raw observation.

        The observation is buffered for the deferred replay; objectives
        that feed drift evaluate immediately so their breaches can steer
        the run.
        """
        self._buffer.append((signal, t, value, stream))
        inline = self._inline.get(signal)
        if inline is not None:
            self._evaluate(inline, signal, t, value, stream)

    def _replay_deferred(self) -> None:
        """Run alert-only objectives over the unseen buffer suffix."""
        buffer = self._buffer
        start = self._replayed
        if start >= len(buffer):
            return
        self._replayed = len(buffer)
        if self._deferred:
            evaluate = self._evaluate
            by_signal: Dict[str, List] = {}
            for observation in buffer[start:]:
                by_signal.setdefault(observation[0], []).append(observation)
            for signal, tracked in self._deferred.items():
                for _, t, value, stream in by_signal.get(signal, ()):
                    evaluate(tracked, signal, t, value, stream)
        # deterministic merge of inline + replayed breaches; sort is
        # stable, so each objective's own breaches keep emission order
        self._breaches.sort(key=lambda b: (b.time, b.objective))

    def _evaluate(
        self,
        tracked: List[_Tracked],
        signal: str,
        t: float,
        value: float,
        stream: Optional[str],
    ) -> None:
        """Push one observation through the given objectives."""
        for entry in tracked:
            if entry.stream is not None and entry.stream != stream:
                continue
            entries = entry.entries
            sorted_values = entry.sorted_values
            entries.append((t, value))
            insort(sorted_values, value)
            entry.total += value
            cutoff = t - entry.horizon
            while entries[0][0] < cutoff:
                _, old = entries.popleft()
                del sorted_values[bisect_left(sorted_values, old)]
                entry.total -= old
            n = len(entries)
            if n < entry.min_count:
                continue
            rank = entry.rank
            if rank is not None:
                num, den = rank
                stat = sorted_values[(num * n + den - 1) // den - 1]
            elif entry.stat_name == "mean":
                stat = entry.total / n
            else:
                stat = sorted_values[-1]
            if stat > entry.threshold:
                if not entry.breached:
                    entry.breached = True
                    breach = SloBreach(
                        time=t,
                        objective=entry.objective.name,
                        signal=signal,
                        stat=entry.stat_name,
                        value=stat,
                        threshold=entry.threshold,
                        window_count=n,
                    )
                    self._breaches.append(breach)
                    if entry.feed_drift and self.drift_sink is not None:
                        self.drift_sink(breach)
            else:
                entry.breached = False

    # ------------------------------------------------------------------
    def summary(self) -> List[Dict]:
        """One row per objective: breach count and final window stat."""
        self._replay_deferred()
        rows = []
        for tracked in (
            entry for group in self._by_signal.values() for entry in group
        ):
            objective = tracked.objective
            count = sum(
                1 for b in self._breaches if b.objective == objective.name
            )
            rows.append(
                {
                    "objective": objective.name,
                    "signal": objective.signal,
                    "stat": objective.stat,
                    "threshold": objective.threshold,
                    "window": objective.window,
                    "stream": objective.stream,
                    "breaches": count,
                    "last_value": (
                        tracked.stat() if len(tracked) else None
                    ),
                    "breached_now": tracked.breached,
                }
            )
        rows.sort(key=lambda r: r["objective"])
        return rows

    def breach_dicts(self) -> List[Dict]:
        self._replay_deferred()
        return [b.as_dict() for b in self._breaches]


def load_slo_spec(source) -> List[Objective]:
    """Parse an SLO spec (path, JSON text, or parsed structure).

    The spec is either ``{"objectives": [...]}`` or a bare list of
    objective dictionaries; unknown keys are rejected by the dataclass.
    """
    if isinstance(source, (list, dict)):
        data = source
    else:
        text = str(source)
        if text.lstrip().startswith(("{", "[")):
            data = json.loads(text)
        else:
            with open(text, "r", encoding="utf-8") as handle:
                data = json.load(handle)
    if isinstance(data, dict):
        data = data.get("objectives", [])
    if not isinstance(data, list):
        raise ValueError("SLO spec must be a list of objectives")
    return [Objective(**entry) for entry in data]
