"""Process-local metrics: counters, gauges and histograms with labels.

The registry is the write side of the observability layer: pipeline
stages record *what happened* (events matched, cache hits, merges
performed) as named instruments, and exporters or reports read one
consistent snapshot at the end of a run.  Everything is in-process and
dependency-free — the shape follows the Prometheus client model
(instrument -> labeled children -> samples) without any of its wire
formats.

Instruments are cheap enough for per-lookup hot paths: a bound child
(:meth:`Counter.labels` resolved once, outside the loop) increments a
single float under a lock, and a registry lookup is one dict access.
All mutation is thread-safe.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: default histogram bucket upper bounds (seconds-oriented: spans from
#: microseconds to minutes), chosen so timing observations land usefully
#: without configuration
DEFAULT_BUCKETS = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    """Canonical hashable form of a label set (sorted, stringified)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Common machinery: a named family of labeled children."""

    kind = "abstract"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._lock = threading.Lock()
        self._children: Dict[LabelKey, object] = {}

    def labels(self, **labels: object):
        """The child tracking one label combination (created on demand)."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def _make_child(self):
        raise NotImplementedError

    def reset(self) -> None:
        """Zero every child (the children themselves are kept)."""
        with self._lock:
            for child in self._children.values():
                child.reset()

    def samples(self) -> List[Dict]:
        """One flat record per labeled child."""
        with self._lock:
            items = list(self._children.items())
        records = []
        for key, child in items:
            record = {
                "name": self.name,
                "type": self.kind,
                "labels": dict(key),
            }
            record.update(child.sample())
            records.append(record)
        return records


class _CounterChild:
    """A monotonically increasing count for one label combination."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, value: float = 1.0) -> None:
        if value < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += value

    def merge(self, sample: Mapping) -> None:
        """Fold another child's sample into this one (adds the count)."""
        self.inc(float(sample.get("value", 0.0)))

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def sample(self) -> Dict:
        return {"value": self._value}


class Counter(_Instrument):
    """A monotonically increasing counter with optional labels."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    # convenience for the common unlabeled case
    def inc(self, value: float = 1.0, **labels: object) -> None:
        self.labels(**labels).inc(value)

    @property
    def value(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(child.value for child in self._children.values())


class _GaugeChild:
    """A point-in-time value for one label combination."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, value: float) -> None:
        with self._lock:
            self._value += value

    def merge(self, sample: Mapping) -> None:
        """Fold another child's sample into this one (last write wins —
        a gauge is a point-in-time reading, not an accumulation)."""
        self.set(float(sample.get("value", 0.0)))

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def sample(self) -> Dict:
        return {"value": self._value}


class Gauge(_Instrument):
    """A value that can go up and down (population sizes, cache sizes)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float, **labels: object) -> None:
        self.labels(**labels).set(value)

    @property
    def value(self) -> float:
        with self._lock:
            children = list(self._children.values())
        if not children:
            return 0.0
        return children[-1].value if len(children) == 1 else sum(
            c.value for c in children
        )


class _HistogramChild:
    """Count/sum/min/max plus cumulative bucket counts."""

    __slots__ = ("_lock", "_bounds", "_buckets", "count", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float]) -> None:
        self._lock = threading.Lock()
        self._bounds = tuple(bounds)
        self._buckets = [0] * (len(self._bounds) + 1)  # +inf overflow
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            for idx, bound in enumerate(self._bounds):
                if value <= bound:
                    self._buckets[idx] += 1
                    return
            self._buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _quantile_locked(self, q: float) -> Optional[float]:
        """Exact-over-bounds quantile estimate (caller holds the lock).

        The observation of rank ``ceil(q * count)`` fell in some bucket;
        its upper bound — clamped to the recorded ``[min, max]`` — is the
        tightest value the bucket layout can certify.  No interpolation,
        no dependencies, deterministic for a given stream of observes.
        """
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for idx, bound in enumerate(self._bounds):
            cumulative += self._buckets[idx]
            if cumulative >= rank:
                return min(max(bound, self.min), self.max)
        return self.max

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile (0 < q <= 1), or ``None`` when empty."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        with self._lock:
            return self._quantile_locked(q)

    def merge(self, sample: Mapping) -> None:
        """Fold another child's sample into this one.

        Count, sum and the per-bucket counts add; min/max widen.  Bucket
        counts are matched by their ``le_*`` key, so only bounds both
        sides share contribute detail (count and sum stay exact either
        way).
        """
        count = int(sample.get("count", 0))
        if count <= 0:
            return
        buckets = sample.get("buckets") or {}
        with self._lock:
            self.count += count
            self.sum += float(sample.get("sum", 0.0))
            low = sample.get("min")
            if low is not None and float(low) < self.min:
                self.min = float(low)
            high = sample.get("max")
            if high is not None and float(high) > self.max:
                self.max = float(high)
            for idx, bound in enumerate(self._bounds):
                self._buckets[idx] += int(buckets.get(f"le_{bound:g}", 0))
            self._buckets[-1] += int(buckets.get("le_inf", 0))

    def reset(self) -> None:
        with self._lock:
            self._buckets = [0] * (len(self._bounds) + 1)
            self.count = 0
            self.sum = 0.0
            self.min = float("inf")
            self.max = float("-inf")

    def sample(self) -> Dict:
        with self._lock:
            empty = self.count == 0
            return {
                "count": self.count,
                "sum": self.sum,
                "min": None if empty else self.min,
                "max": None if empty else self.max,
                "mean": 0.0 if empty else self.sum / self.count,
                "p50": self._quantile_locked(0.50),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
                "buckets": {
                    **{
                        f"le_{bound:g}": count
                        for bound, count in zip(self._bounds, self._buckets)
                    },
                    "le_inf": self._buckets[-1],
                },
            }


class Histogram(_Instrument):
    """A distribution of observations (timings, batch sizes)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, description)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a sorted non-empty sequence")
        self.buckets = tuple(float(b) for b in buckets)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float, **labels: object) -> None:
        self.labels(**labels).observe(value)

    def quantile(self, q: float, **labels: object) -> Optional[float]:
        return self.labels(**labels).quantile(q)


class MetricsRegistry:
    """A process-local collection of named instruments.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking for
    an existing name returns the existing instrument (and raises if it
    was registered as a different type), so any module can reference a
    metric without coordinating creation order.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, description: str, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = cls(name, description, **kwargs)
                    self._instruments[name] = instrument
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, not {cls.kind}"
            )
        return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, description, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Instrument]:
        """The instrument registered under ``name``, if any."""
        return self._instruments.get(name)

    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def snapshot(self) -> List[Dict]:
        """Every sample of every instrument, one flat record each."""
        records: List[Dict] = []
        for instrument in self.instruments():
            records.extend(instrument.samples())
        return records

    def reset(self) -> None:
        """Zero every instrument (registrations are kept)."""
        for instrument in self.instruments():
            instrument.reset()

    def merge_records(self, records: Iterable[Mapping]) -> int:
        """Fold snapshot records from another registry into this one.

        ``records`` is what :meth:`snapshot` produced on the source
        registry — typically a worker process's metrics shipped back to
        the parent by the parallel sweep engine.  Counters and histograms
        accumulate; gauges take the merged value (last write wins).
        Instruments and labeled children are created on demand, so a
        parent that never touched a metric still receives it.  Returns
        the number of records merged.
        """
        merged = 0
        for record in records:
            name = record.get("name")
            kind = record.get("type")
            if not name:
                continue
            if kind == "counter":
                instrument = self.counter(name)
            elif kind == "gauge":
                instrument = self.gauge(name)
            elif kind == "histogram":
                # recover the source's bucket bounds from the sample keys
                # so a first-contact merge preserves the distribution
                bounds = sorted(
                    float(key[3:])
                    for key in (record.get("buckets") or {})
                    if key != "le_inf"
                )
                instrument = self.histogram(
                    name, buckets=bounds or DEFAULT_BUCKETS
                )
            else:
                continue
            instrument.labels(**record.get("labels", {})).merge(record)
            merged += 1
        return merged
