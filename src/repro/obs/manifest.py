"""Run manifests: what exactly produced a set of numbers.

A :class:`RunManifest` freezes the provenance of one experiment run —
scenario identity and seeds, library versions, command line, and the
wall clock of each pipeline phase — so that a JSONL trace or a
``BENCH_*.json`` record can be compared across PRs knowing the two runs
measured the same thing.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["RunManifest", "bench_stamp"]


def _versions() -> Dict[str, str]:
    versions = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        # parallel sweeps scale with the core count; record it so two
        # BENCH_sweep records are only compared on comparable hardware
        "cpu_count": str(os.cpu_count() or 1),
    }
    try:
        import numpy

        versions["numpy"] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        pass
    try:
        from .. import __version__

        versions["repro"] = __version__
    except Exception:  # pragma: no cover - import cycle guard
        pass
    try:
        # which membership-kernel backend produced the numbers — bench
        # artifacts are incomparable across backends of different speed
        from ..kernels import backend_name

        versions["kernel_backend"] = backend_name()
    except Exception:  # pragma: no cover - import cycle guard
        pass
    return versions


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except Exception:
        pass
    return "unknown"


def bench_stamp() -> Dict[str, str]:
    """Provenance stamp for ``BENCH_*.json`` records.

    Every benchmark emitter merges this in so the bench trajectory is
    comparable across PRs: which commit, when, and which kernel backend
    produced the numbers.
    """
    try:
        from ..kernels import backend_name

        backend = backend_name()
    except Exception:  # pragma: no cover - import cycle guard
        backend = "unknown"
    return {
        "git_sha": _git_sha(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "kernel_backend": backend,
    }


@dataclass
class RunManifest:
    """Provenance record of one run."""

    created: str
    argv: List[str]
    versions: Dict[str, str]
    scenario: Dict[str, object] = field(default_factory=dict)
    config: Dict[str, object] = field(default_factory=dict)
    phases: List[Dict[str, object]] = field(default_factory=list)

    @classmethod
    def capture(
        cls,
        scenario: Optional[object] = None,
        argv: Optional[Sequence[str]] = None,
        **config: object,
    ) -> "RunManifest":
        """Snapshot the environment (and optionally a scenario).

        ``scenario`` is duck-typed: anything carrying ``name`` / ``seed``
        (and optionally ``subscriptions`` / ``topology``) contributes its
        identity, so :class:`repro.sim.Scenario` works without an import
        dependency from this leaf module.
        """
        scenario_info: Dict[str, object] = {}
        if scenario is not None:
            for attr in ("name", "seed"):
                value = getattr(scenario, attr, None)
                if value is not None:
                    scenario_info[attr] = value
            subs = getattr(scenario, "subscriptions", None)
            if subs is not None and hasattr(subs, "n_subscribers"):
                scenario_info["n_subscribers"] = int(subs.n_subscribers)
            topology = getattr(scenario, "topology", None)
            graph = getattr(topology, "graph", None)
            if graph is not None and hasattr(graph, "n_nodes"):
                scenario_info["n_nodes"] = int(graph.n_nodes)
        return cls(
            created=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            argv=list(argv) if argv is not None else list(sys.argv),
            versions=_versions(),
            scenario=scenario_info,
            config=dict(config),
        )

    def add_phase(self, name: str, seconds: float, **extra: object) -> None:
        """Record one phase's wall clock."""
        self.phases.append(
            {"name": name, "seconds": float(seconds), **extra}
        )

    def total_phase_seconds(self) -> float:
        return sum(float(p["seconds"]) for p in self.phases)

    def as_dict(self) -> Dict:
        return {
            "created": self.created,
            "argv": self.argv,
            "versions": self.versions,
            "scenario": dict(self.scenario),
            "config": dict(self.config),
            "phases": [dict(p) for p in self.phases],
        }
