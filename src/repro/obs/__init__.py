"""Unified observability layer: metrics, span tracing, run manifests.

The pipeline stages (clustering fit, matching, dispatch pricing, broker
delivery and rebuilds, experiment sweeps) all report into one
process-local :class:`MetricsRegistry` and one :class:`Tracer`; a
:class:`RunManifest` pins down what produced the numbers, and the JSONL
exporters turn all three into one machine-readable trace per run.

Module-level defaults keep instrumentation one import away::

    from repro.obs import get_registry, get_tracer

    with get_tracer().span("my.phase") as span:
        ...
    get_registry().counter("my_events_total").inc()

The default tracer starts *disabled* (spans cost one attribute check);
``--profile`` / ``--trace`` on the sim CLI, or :func:`enable_tracing`,
switch it on.  Metrics are always collected — they are cheap and several
components (the dispatcher's cache statistics, the broker's delivery
stats) are backed by them.
"""

from .export import export_records, read_jsonl, write_jsonl
from .flight import FlightRecorder, StageRecord, stage_latencies
from .manifest import RunManifest, bench_stamp
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .openmetrics import render_openmetrics
from .slo import Objective, SloBreach, SloEngine, load_slo_spec
from .trace import Span, Tracer, aggregate_spans

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "aggregate_spans",
    "FlightRecorder",
    "StageRecord",
    "stage_latencies",
    "Objective",
    "SloBreach",
    "SloEngine",
    "load_slo_spec",
    "render_openmetrics",
    "RunManifest",
    "bench_stamp",
    "export_records",
    "write_jsonl",
    "read_jsonl",
    "REGISTRY",
    "TRACER",
    "FLIGHT",
    "get_registry",
    "get_tracer",
    "get_flight_recorder",
    "set_registry",
    "set_tracer",
    "set_flight_recorder",
    "reset_worker_state",
    "enable_tracing",
    "disable_tracing",
]

#: the process-wide default registry every pipeline stage records into
REGISTRY = MetricsRegistry()

#: the process-wide default tracer (disabled until a profiling entry
#: point — CLI flag, benchmark, example — enables it)
TRACER = Tracer(enabled=False)

#: the process-wide default flight recorder (disabled until a serve/
#: chaos entry point enables per-event recording)
FLIGHT = FlightRecorder(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-wide default metrics registry."""
    return REGISTRY


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return TRACER


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide default."""
    global REGISTRY
    REGISTRY = registry
    return registry


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide default."""
    global TRACER
    TRACER = tracer
    return tracer


def get_flight_recorder() -> FlightRecorder:
    """The process-wide default flight recorder."""
    return FLIGHT


def set_flight_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Install ``recorder`` as the process-wide default."""
    global FLIGHT
    FLIGHT = recorder
    return recorder


def reset_worker_state(tracing: bool = False, flight: bool = False) -> None:
    """Install a fresh registry, tracer, and flight recorder (worker-process
    start hook).

    A forked worker inherits copies of the parent's instruments and
    recorded spans; if it kept recording into those, its end-of-task
    snapshot would include everything the parent counted *before* the
    fork and the parent would double-count it on merge.  Long-lived
    objects that bound counter handles before the fork (dispatchers)
    must re-resolve them afterwards — see
    :meth:`repro.delivery.Dispatcher.rebind_metrics`.
    """
    set_registry(MetricsRegistry())
    set_tracer(Tracer(enabled=tracing))
    set_flight_recorder(FlightRecorder(enabled=flight))


def enable_tracing(clear: bool = True) -> Tracer:
    """Switch the default tracer on (optionally dropping old spans)."""
    if clear:
        TRACER.clear()
    TRACER.enable()
    return TRACER


def disable_tracing() -> Tracer:
    """Switch the default tracer off (recorded spans are kept)."""
    TRACER.disable()
    return TRACER
