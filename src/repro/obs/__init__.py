"""Unified observability layer: metrics, span tracing, run manifests.

The pipeline stages (clustering fit, matching, dispatch pricing, broker
delivery and rebuilds, experiment sweeps) all report into one
process-local :class:`MetricsRegistry` and one :class:`Tracer`; a
:class:`RunManifest` pins down what produced the numbers, and the JSONL
exporters turn all three into one machine-readable trace per run.

Module-level defaults keep instrumentation one import away::

    from repro.obs import get_registry, get_tracer

    with get_tracer().span("my.phase") as span:
        ...
    get_registry().counter("my_events_total").inc()

The default tracer starts *disabled* (spans cost one attribute check);
``--profile`` / ``--trace`` on the sim CLI, or :func:`enable_tracing`,
switch it on.  Metrics are always collected — they are cheap and several
components (the dispatcher's cache statistics, the broker's delivery
stats) are backed by them.
"""

from .export import export_records, read_jsonl, write_jsonl
from .manifest import RunManifest
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import Span, Tracer, aggregate_spans

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "aggregate_spans",
    "RunManifest",
    "export_records",
    "write_jsonl",
    "read_jsonl",
    "REGISTRY",
    "TRACER",
    "get_registry",
    "get_tracer",
    "set_registry",
    "set_tracer",
    "reset_worker_state",
    "enable_tracing",
    "disable_tracing",
]

#: the process-wide default registry every pipeline stage records into
REGISTRY = MetricsRegistry()

#: the process-wide default tracer (disabled until a profiling entry
#: point — CLI flag, benchmark, example — enables it)
TRACER = Tracer(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-wide default metrics registry."""
    return REGISTRY


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return TRACER


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide default."""
    global REGISTRY
    REGISTRY = registry
    return registry


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide default."""
    global TRACER
    TRACER = tracer
    return tracer


def reset_worker_state(tracing: bool = False) -> None:
    """Install a fresh registry and tracer (worker-process start hook).

    A forked worker inherits copies of the parent's instruments and
    recorded spans; if it kept recording into those, its end-of-task
    snapshot would include everything the parent counted *before* the
    fork and the parent would double-count it on merge.  Long-lived
    objects that bound counter handles before the fork (dispatchers)
    must re-resolve them afterwards — see
    :meth:`repro.delivery.Dispatcher.rebind_metrics`.
    """
    set_registry(MetricsRegistry())
    set_tracer(Tracer(enabled=tracing))


def enable_tracing(clear: bool = True) -> Tracer:
    """Switch the default tracer on (optionally dropping old spans)."""
    if clear:
        TRACER.clear()
    TRACER.enable()
    return TRACER


def disable_tracing() -> Tracer:
    """Switch the default tracer off (recorded spans are kept)."""
    TRACER.disable()
    return TRACER
