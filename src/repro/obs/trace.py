"""Hierarchical span tracing with near-zero disabled overhead.

A :class:`Tracer` hands out context-managed spans::

    with tracer.span("clustering.fit", algorithm="forgy") as span:
        ...
        span.set("iterations", 12)

Spans nest per thread (a thread-local stack provides the parent), time
themselves with :func:`time.perf_counter_ns`, survive exceptions (the
span is closed and flagged, the exception propagates) and accumulate in
a thread-safe buffer for export or aggregation.  When the tracer is
disabled — the default — ``span()`` returns one shared no-op object, so
instrumented code pays a single attribute check per call site.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Span", "Tracer", "aggregate_spans"]


class Span:
    """One finished (or in-flight) timed operation."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "depth",
        "thread",
        "start_ns",
        "duration_ns",
        "attrs",
        "error",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        thread: int,
        start_ns: int,
        attrs: Dict[str, object],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.thread = thread
        self.start_ns = start_ns
        self.duration_ns: Optional[int] = None
        self.attrs = attrs
        self.error: Optional[str] = None

    def set(self, key: str, value: object) -> None:
        """Attach an attribute to the span."""
        self.attrs[key] = value

    @property
    def duration_s(self) -> float:
        return (self.duration_ns or 0) / 1e9

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "thread": self.thread,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "attrs": dict(self.attrs),
            "error": self.error,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ms = (self.duration_ns or 0) / 1e6
        return f"Span({self.name!r}, {ms:.3f}ms, depth={self.depth})"


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, key: str, value: object) -> None:
        pass


_NOOP = _NoopSpan()


class _ActiveSpan:
    """Context manager that opens a :class:`Span` on the tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.error = exc_type.__name__
        self._tracer._close(self._span)
        return False


class Tracer:
    """Produces nesting spans; collects them while enabled."""

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = enabled
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._ids = itertools.count(1)
        self._local = threading.local()

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        """Drop every recorded span (id sequence keeps counting)."""
        with self._lock:
            self._spans = []

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object):
        """A context manager timing one operation (no-op when disabled)."""
        if not self._enabled:
            return _NOOP
        return _ActiveSpan(self, name, attrs)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, name: str, attrs: Dict) -> Span:
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            depth=len(stack),
            thread=threading.get_ident(),
            start_ns=time.perf_counter_ns(),
            attrs=attrs,
        )
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.duration_ns = time.perf_counter_ns() - span.start_ns
        stack = self._stack()
        # exception-tolerant pop: the span being closed is normally the
        # top of the stack, but unwind past any abandoned children
        while stack:
            top = stack.pop()
            if top is span:
                break
        with self._lock:
            self._spans.append(span)

    # ------------------------------------------------------------------
    def ingest(self, records: Iterable[Mapping]) -> List[Span]:
        """Fold spans recorded by another tracer into this one.

        ``records`` are :meth:`Span.as_dict` dictionaries — typically a
        worker process's spans shipped back to the parent by the parallel
        sweep engine.  Span ids are remapped through this tracer's own id
        sequence so merged traces stay collision-free; parent links
        *within* the batch are preserved (ids are assigned at open time,
        so a parent always precedes its children when sorted by id) and
        links to spans outside the batch become roots.  Works while the
        tracer is disabled — merging is bookkeeping, not tracing.
        """
        ingested: List[Span] = []
        remap: Dict[int, int] = {}
        for record in sorted(records, key=lambda r: r.get("span_id", 0)):
            new_id = next(self._ids)
            old_id = record.get("span_id")
            if old_id is not None:
                remap[old_id] = new_id
            span = Span(
                name=str(record.get("name", "?")),
                span_id=new_id,
                parent_id=remap.get(record.get("parent_id")),
                depth=int(record.get("depth", 0)),
                thread=int(record.get("thread", 0)),
                start_ns=int(record.get("start_ns", 0)),
                attrs=dict(record.get("attrs") or {}),
            )
            duration = record.get("duration_ns")
            span.duration_ns = None if duration is None else int(duration)
            span.error = record.get("error")
            ingested.append(span)
        with self._lock:
            self._spans.extend(ingested)
        return ingested

    def spans(self) -> List[Span]:
        """Snapshot of the finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span on this thread (None outside spans)."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None


def aggregate_spans(spans: Iterable[Span]) -> List[Dict]:
    """Fold spans into one row per span name.

    Each row carries call count, total/mean/max seconds and *self*
    seconds (total minus the time covered by direct children — the
    phase-breakdown quantity: where the milliseconds actually go).
    Rows come back sorted by total time, descending.
    """
    spans = list(spans)
    child_ns: Dict[int, int] = {}
    for span in spans:
        if span.parent_id is not None and span.duration_ns:
            child_ns[span.parent_id] = (
                child_ns.get(span.parent_id, 0) + span.duration_ns
            )
    rows: Dict[str, Dict] = {}
    for span in spans:
        row = rows.setdefault(
            span.name,
            {
                "name": span.name,
                "calls": 0,
                "total_s": 0.0,
                "self_s": 0.0,
                "max_s": 0.0,
            },
        )
        duration = span.duration_s
        row["calls"] += 1
        row["total_s"] += duration
        row["self_s"] += max(
            0.0, duration - child_ns.get(span.span_id, 0) / 1e9
        )
        row["max_s"] = max(row["max_s"], duration)
    result = sorted(rows.values(), key=lambda r: -r["total_s"])
    for row in result:
        row["mean_s"] = row["total_s"] / row["calls"]
    return result
