"""OpenMetrics / Prometheus text exposition for the metrics registry.

Renders :meth:`MetricsRegistry.snapshot` into the OpenMetrics text
format — ``# TYPE`` headers, counter families named without their
``_total`` suffix, cumulative ``_bucket{le="..."}`` series recovered
from the registry's per-bucket counts, ``_sum``/``_count``, and a
terminating ``# EOF`` — with one repo-specific extension: each
histogram also exposes a ``<family>_quantile`` gauge family carrying
the exact-over-bounds p50/p95/p99 summaries, so scrape-side dashboards
get quantiles without PromQL ``histogram_quantile`` interpolation
error.

Output is fully deterministic: families and series are sorted, floats
are formatted with :func:`repr`-stable rules, and no wall-clock
timestamps are emitted.  Two runs of the same seeded scenario produce
byte-identical expositions — which CI exploits to diff them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from .metrics import MetricsRegistry

__all__ = ["render_openmetrics"]

#: histogram quantiles exposed as the ``_quantile`` summary family
QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt(value: float) -> str:
    """Decimal rendering: integers bare, floats via repr (shortest
    round-trip form — deterministic across runs and platforms)."""
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _labels(labels: Mapping[str, str], extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = sorted(labels.items()) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


def _bucket_bounds(buckets: Mapping[str, int]) -> List[Tuple[float, str, int]]:
    """Sorted (bound, le-label, per-bucket count) triples, +Inf last."""
    out = []
    for key, count in buckets.items():
        if key == "le_inf":
            out.append((float("inf"), "+Inf", int(count)))
        else:
            bound = float(key[3:])
            out.append((bound, f"{bound:g}", int(count)))
    out.sort(key=lambda item: item[0])
    return out


def render_openmetrics(
    source: Union[MetricsRegistry, Iterable[Mapping]],
    descriptions: Optional[Mapping[str, str]] = None,
) -> str:
    """Render a registry (or its snapshot records) as OpenMetrics text."""
    if isinstance(source, MetricsRegistry):
        if descriptions is None:
            descriptions = {
                inst.name: inst.description
                for inst in source.instruments()
                if inst.description
            }
        records = source.snapshot()
    else:
        records = list(source)
    descriptions = descriptions or {}

    # group snapshot records into families, preserving per-family kind
    families: Dict[str, Dict] = {}
    for record in records:
        name = record.get("name")
        if not name:
            continue
        family = families.setdefault(
            name, {"kind": record.get("type", "gauge"), "samples": []}
        )
        family["samples"].append(record)

    lines: List[str] = []
    for name in sorted(families):
        family = families[name]
        kind = family["kind"]
        samples = sorted(
            family["samples"],
            key=lambda r: sorted((r.get("labels") or {}).items()),
        )
        if kind == "counter":
            # OpenMetrics: the family drops the _total suffix, the
            # sample keeps it
            base = name[:-6] if name.endswith("_total") else name
            description = descriptions.get(name)
            if description:
                lines.append(f"# HELP {base} {_escape(description)}")
            lines.append(f"# TYPE {base} counter")
            sample_name = base + "_total"
            for record in samples:
                labels = _labels(record.get("labels") or {})
                lines.append(
                    f"{sample_name}{labels} {_fmt(record.get('value', 0.0))}"
                )
        elif kind == "gauge":
            description = descriptions.get(name)
            if description:
                lines.append(f"# HELP {name} {_escape(description)}")
            lines.append(f"# TYPE {name} gauge")
            for record in samples:
                labels = _labels(record.get("labels") or {})
                lines.append(
                    f"{name}{labels} {_fmt(record.get('value', 0.0))}"
                )
        elif kind == "histogram":
            description = descriptions.get(name)
            if description:
                lines.append(f"# HELP {name} {_escape(description)}")
            lines.append(f"# TYPE {name} histogram")
            quantile_lines: List[str] = []
            for record in samples:
                label_map = record.get("labels") or {}
                cumulative = 0
                for _, le, count in _bucket_bounds(
                    record.get("buckets") or {}
                ):
                    cumulative += count
                    labels = _labels(label_map, (("le", le),))
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                plain = _labels(label_map)
                lines.append(f"{name}_sum{plain} {_fmt(record.get('sum', 0.0))}")
                lines.append(
                    f"{name}_count{plain} {_fmt(record.get('count', 0))}"
                )
                for quantile, stat in QUANTILES:
                    value = record.get(stat)
                    if value is None:
                        continue
                    labels = _labels(label_map, (("quantile", quantile),))
                    quantile_lines.append(
                        f"{name}_quantile{labels} {_fmt(value)}"
                    )
            if quantile_lines:
                lines.append(f"# TYPE {name}_quantile gauge")
                lines.extend(quantile_lines)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
