"""JSONL export of traces, metrics and manifests.

One JSON object per line, each tagged with a ``"kind"`` field:

* ``{"kind": "manifest", ...}`` — at most one, always first;
* ``{"kind": "span", ...}`` — one per finished span (see
  :meth:`repro.obs.Span.as_dict`);
* ``{"kind": "metric", ...}`` — one per labeled instrument child (see
  :meth:`repro.obs.MetricsRegistry.snapshot`);
* ``{"kind": "flight", ...}`` — one per flight-recorder stage record
  (see :meth:`repro.obs.StageRecord.as_dict`), when a recorder with
  records is passed.

The format is append-friendly and diff-able: traces of two runs of the
same sweep line up record-for-record, which is what makes cross-PR
comparison of the ``--trace`` output practical.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .flight import FlightRecorder
from .manifest import RunManifest
from .metrics import MetricsRegistry
from .trace import Tracer

__all__ = ["export_records", "write_jsonl", "read_jsonl"]


def export_records(
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    manifest: Optional[RunManifest] = None,
    flight: Optional[FlightRecorder] = None,
) -> List[Dict]:
    """Flatten the given sources into tagged JSONL-ready records."""
    records: List[Dict] = []
    if manifest is not None:
        records.append({"kind": "manifest", **manifest.as_dict()})
    if tracer is not None:
        for span in tracer.spans():
            records.append({"kind": "span", **span.as_dict()})
    if registry is not None:
        for sample in registry.snapshot():
            records.append({"kind": "metric", **sample})
    if flight is not None:
        for record in flight.as_dicts():
            records.append({"kind": "flight", **record})
    return records


def write_jsonl(
    path,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    manifest: Optional[RunManifest] = None,
    flight: Optional[FlightRecorder] = None,
) -> int:
    """Write the sources to ``path``; returns the number of records."""
    records = export_records(
        tracer=tracer, registry=registry, manifest=manifest, flight=flight
    )
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, default=_jsonable))
            handle.write("\n")
    return len(records)


def read_jsonl(path) -> List[Dict]:
    """Parse a JSONL file back into its records (blank lines skipped)."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _jsonable(value):
    """Coerce numpy scalars and other stragglers for json.dumps."""
    if hasattr(value, "item"):
        return value.item()
    return str(value)
